"""Strategy executors: run one planned strategy, report uniform counters.

Each executor returns ``(payload, EngineStats, raw)`` where ``raw`` is the
subsystem-native result object.  I/O accounting follows the experiments'
uniform model (see :mod:`repro.experiments.fig_flat`): every page access —
data page or index node — is one simulated disk read, so FLAT and R-tree
strategies stay comparable.  FLAT data pages go through the simulated
disk/buffer pool (their stall time reflects caching and sequential reads);
in-memory index node visits are charged one ``read_latency_ms`` each on
both sides.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Sequence

from repro import kernels
from repro.core.flat.index import FLATIndex, FLATQueryResult
from repro.core.flat.stats import FLATQueryStats
from repro.core.scout.baselines import (
    ExtrapolationPrefetcher,
    HilbertPrefetcher,
    NoPrefetcher,
)
from repro.core.scout.metrics import SessionMetrics
from repro.core.scout.prefetcher import Prefetcher, ScoutPrefetcher
from repro.core.scout.session import ExplorationSession
from repro.core.touch.join import touch_join
from repro.core.touch.nested_loop import nested_loop_join
from repro.core.touch.pbsm import pbsm_join
from repro.core.touch.plane_sweep import plane_sweep_join
from repro.core.touch.stats import JoinResult, RefineFunc, segment_touch_refine
from repro.engine.queries import SpatialJoin, Walkthrough
from repro.engine.stats import EngineStats
from repro.errors import EngineError
from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3
from repro.objects import SpatialObject
from repro.rtree.tree import RTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskParameters

__all__ = [
    "run_range_flat",
    "run_range_rtree",
    "run_knn_flat",
    "run_knn_rtree",
    "run_join",
    "run_walk",
    "JOIN_EXECUTORS",
]


# -- range ---------------------------------------------------------------------
def run_range_flat(
    index: FLATIndex, box: AABB, pool: BufferPool | None
) -> tuple[list[int], EngineStats, FLATQueryResult]:
    result = index.query(box, pool=pool)
    s = result.stats
    stats = EngineStats(
        kind="range",
        strategy="flat",
        pages_read=s.pages_read,
        io_time_ms=s.stall_time_ms
        + s.seed_nodes_visited * index.disk.params.read_latency_ms,
        comparisons=s.seed_entries_tested + s.neighbor_tests + s.objects_scanned,
        num_results=s.num_results,
    )
    return result.uids, stats, result


def run_range_rtree(
    rtree: RTree, box: AABB, disk_params: DiskParameters
) -> tuple[list[int], EngineStats, Any]:
    uids, s = rtree.range_query_with_stats(box)
    stats = EngineStats(
        kind="range",
        strategy="rtree",
        pages_read=s.pages_read,
        io_time_ms=s.pages_read * disk_params.read_latency_ms,
        comparisons=s.entries_tested,
        num_results=s.num_results,
    )
    return uids, stats, s


# -- k-nearest-neighbours ------------------------------------------------------
def run_knn_flat(
    index: FLATIndex, point: Vec3, k: int, pool: BufferPool | None = None
) -> tuple[list[tuple[int, float]], EngineStats, FLATQueryStats]:
    """Best-first descent of FLAT's *seed R-tree*, paging partitions in.

    Unlike :meth:`FLATIndex.knn` (which ranks every partition MBR up
    front), this walks the seed tree itself, so index work is logarithmic
    in the partition count and only partitions that can still contain one
    of the ``k`` answers are fetched from disk.  Data pages go through
    ``pool`` when given, so batched queries reuse warm pages.

    The answer is canonical: the ``k`` smallest by ``(distance, uid)``.
    Distance ties at the ``k``-th place break by uid, never by visit
    order, so the result is identical across crawl orders, strategies and
    shard counts (the differential suite depends on this).
    """
    raw = FLATQueryStats()
    counter = itertools.count()
    # Heap items: (lower-bound distance, tiebreak, node, partition_id).
    heap: list[tuple[float, int, Any, int | None]] = [
        (0.0, next(counter), index.seed_tree.root, None)
    ]
    best: list[tuple[float, int]] = []  # max-heap via negated (distance, uid)

    def kth_best() -> float:
        return -best[0][0]

    while heap:
        distance, _, node, pid = heapq.heappop(heap)
        if len(best) == k and distance > kth_best():
            break
        if node is None:
            assert pid is not None
            if pool is not None:
                before = pool.stats.stall_time_ms
                page = pool.fetch(pid)
                raw.stall_time_ms += pool.stats.stall_time_ms - before
            else:
                page, latency = index.disk.read(pid)
                raw.stall_time_ms += latency
            raw.partitions_fetched += 1
            raw.crawl_order.append(pid)
            raw.objects_scanned += len(page.object_uids)
            object_distances = kernels.point_box_distance(page.bounds.packed(), point)
            for uid, raw_d in zip(page.object_uids, object_distances):
                d = float(raw_d)
                if len(best) < k:
                    heapq.heappush(best, (-d, -uid))
                elif (d, uid) < (-best[0][0], -best[0][1]):
                    heapq.heapreplace(best, (-d, -uid))
            continue
        raw.seed_nodes_visited += 1
        raw.seed_entries_tested += len(node.entries)
        entry_distances = kernels.point_box_distance(node.entry_bounds(), point)
        for entry, raw_d in zip(node.entries, entry_distances):
            d = float(raw_d)
            if len(best) == k and d > kth_best():
                continue
            if node.is_leaf:
                heapq.heappush(heap, (d, next(counter), None, entry.uid))
            else:
                heapq.heappush(heap, (d, next(counter), entry.child, None))

    results = sorted(((-neg_uid, -neg_d) for neg_d, neg_uid in best), key=lambda t: (t[1], t[0]))
    raw.num_results = len(results)
    stats = EngineStats(
        kind="knn",
        strategy="flat",
        pages_read=raw.pages_read,
        io_time_ms=raw.stall_time_ms
        + raw.seed_nodes_visited * index.disk.params.read_latency_ms,
        comparisons=raw.seed_entries_tested + raw.objects_scanned,
        num_results=len(results),
    )
    return results, stats, raw


def run_knn_rtree(
    rtree: RTree, point: Vec3, k: int, disk_params: DiskParameters
) -> tuple[list[tuple[int, float]], EngineStats, Any]:
    """Counted best-first search over the object R-tree (leaves = objects)."""
    results, raw = rtree.knn_with_stats(point, k)
    stats = EngineStats(
        kind="knn",
        strategy="rtree",
        pages_read=raw.nodes_visited,
        io_time_ms=raw.nodes_visited * disk_params.read_latency_ms,
        comparisons=raw.entries_tested,
        num_results=len(results),
    )
    return results, stats, raw


# -- joins ---------------------------------------------------------------------
JOIN_EXECUTORS: dict[str, Callable[..., JoinResult]] = {
    "touch": touch_join,
    "plane-sweep": plane_sweep_join,
    "pbsm": pbsm_join,
    "nested-loop": nested_loop_join,
}


def run_join(
    strategy: str,
    side_a: Sequence[SpatialObject],
    side_b: Sequence[SpatialObject],
    query: SpatialJoin,
) -> tuple[list[tuple[int, int]], EngineStats, JoinResult]:
    try:
        executor = JOIN_EXECUTORS[strategy]
    except KeyError:
        raise EngineError(f"no join executor for strategy {strategy!r}") from None
    refine: RefineFunc | None = segment_touch_refine if query.refine else None
    result = executor(side_a, side_b, eps=query.eps, refine=refine)
    stats = EngineStats(
        kind="join",
        strategy=strategy,
        pages_read=0,  # all join competitors are in-memory algorithms
        io_time_ms=0.0,
        comparisons=result.stats.comparisons,
        num_results=result.num_pairs,
    )
    return result.pairs, stats, result


# -- walkthroughs --------------------------------------------------------------
def _make_prefetcher(
    strategy: str, index: FLATIndex, pool: BufferPool, budget_pages: int
) -> Prefetcher:
    if strategy == "scout":
        return ScoutPrefetcher(index, pool, budget_pages=budget_pages)
    if strategy == "hilbert":
        return HilbertPrefetcher(index, pool, budget_pages=budget_pages)
    if strategy == "extrapolation":
        return ExtrapolationPrefetcher(index, pool, budget_pages=budget_pages)
    if strategy == "none":
        return NoPrefetcher()
    raise EngineError(f"no prefetcher for strategy {strategy!r}")


def run_walk(
    index: FLATIndex,
    pool: BufferPool,
    strategy: str,
    query: Walkthrough,
) -> tuple[SessionMetrics, EngineStats, SessionMetrics]:
    prefetcher = _make_prefetcher(strategy, index, pool, query.budget_pages)
    session = ExplorationSession(index, pool, prefetcher)
    metrics = session.run(list(query.queries), cold_cache=query.cold_cache)
    stats = EngineStats(
        kind="walk",
        strategy=strategy,
        pages_read=metrics.demand_misses + metrics.total_prefetched,
        io_time_ms=metrics.total_stall_ms + metrics.prefetch_io_ms,
        comparisons=0,
        num_results=sum(step.result_size for step in metrics.steps),
    )
    return metrics, stats, metrics


def timed(fn: Callable[[], tuple[Any, EngineStats, Any]]) -> tuple[Any, EngineStats, Any]:
    """Run an executor thunk, stamping wall-clock time and kernel-batch
    counts into its stats.  The kernel counters are per-thread, so the
    before/after delta is exact even when other worker threads execute
    kernel batches concurrently."""
    start = time.perf_counter()
    batches_before = kernels.counters.batches
    payload, stats, raw = fn()
    stats.elapsed_ms = (time.perf_counter() - start) * 1000.0
    stats.kernel_batches = kernels.counters.batches - batches_before
    stats.kernel_backend = kernels.active_backend()
    return payload, stats, raw
