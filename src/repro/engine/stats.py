"""Uniform result envelopes and engine-lifetime telemetry.

Every executor in this package reports its work through the same three
counters — pages read, I/O time, pairwise comparisons — regardless of which
subsystem (FLAT, R-tree, TOUCH, SCOUT) did the work.  That uniformity is
what lets one telemetry object aggregate a mixed batch and one ``render``
path serve the CLI for all four query kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import LATENCY_BUCKETS_MS, Counter, global_registry
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.mutations import MutationStats
    from repro.engine.planner import QueryPlan

__all__ = ["EngineStats", "EngineResult", "EngineTelemetry"]

# Process-wide engine families, registered eagerly so the wire scrape sees
# the names even before the first query runs.
_REGISTRY = global_registry()
_Q_TOTAL = _REGISTRY.counter(
    "repro_engine_queries_total",
    "Queries executed across every engine in the process",
    label_names=("kind", "strategy"),
)
_Q_RESULTS = _REGISTRY.counter(
    "repro_engine_results_total", "Result rows returned by engine queries"
)
_Q_LATENCY = _REGISTRY.histogram(
    "repro_engine_query_latency_ms",
    "Per-query execution wall time (ms)",
    label_names=("kind",),
    buckets=LATENCY_BUCKETS_MS,
)
_Q_KERNEL_BATCHES = _REGISTRY.counter(
    "repro_engine_kernel_batches_total",
    "Batch kernel calls issued by engine queries",
    label_names=("backend",),
)
_M_TOTAL = _REGISTRY.counter(
    "repro_engine_mutations_total",
    "Mutations applied by engine write batches",
    label_names=("op",),
)


@dataclass
class EngineStats:
    """The uniform per-query counters of one engine execution."""

    kind: str  # "range" | "knn" | "join" | "walk"
    strategy: str  # what actually ran (post-planning)
    pages_read: int = 0  # index node pages + data pages (0 for in-memory paths)
    io_time_ms: float = 0.0  # simulated-disk stall + prefetch I/O
    comparisons: int = 0  # MBR/entry tests performed
    num_results: int = 0
    elapsed_ms: float = 0.0  # wall-clock execution time
    planning_ms: float = 0.0  # wall-clock planner time
    kernel_batches: int = 0  # batch kernel calls issued during execution
    kernel_backend: str = ""  # kernel backend that served them

    def as_row(self) -> list[Any]:
        return [
            self.kind,
            self.strategy,
            self.num_results,
            self.pages_read,
            self.io_time_ms,
            self.comparisons,
            self.kernel_batches,
            self.elapsed_ms,
        ]


@dataclass
class EngineResult:
    """What every :meth:`SpatialEngine.execute` call returns.

    ``payload`` depends on the query kind:

    * range — ``list[int]`` of matching uids,
    * knn — ``list[tuple[int, float]]`` of ``(uid, distance)`` pairs,
    * join — ``list[tuple[int, int]]`` of ``(uid_a, uid_b)`` pairs,
    * walk — :class:`repro.core.scout.SessionMetrics`.

    ``raw`` carries the subsystem-native result object (e.g. the
    :class:`FLATQueryResult` or :class:`JoinResult`) for callers that need
    the full low-level counters.
    """

    payload: Any
    stats: EngineStats
    plan: "QueryPlan"
    raw: Any = None

    @property
    def num_results(self) -> int:
        return self.stats.num_results

    def render(self) -> str:
        table = Table(
            ["kind", "strategy", "results", "pages", "io ms", "comparisons", "batches", "exec ms"],
            title=f"engine result ({self.plan.describe()})",
        )
        table.add_row(self.stats.as_row())
        return table.render()


def _family_as_dict(family: Counter) -> dict[str, int]:
    """A labeled counter family as the plain dict the old telemetry exposed."""
    out: dict[str, int] = {}
    for child in family.children():
        value = child.value
        if value:
            out[child.label_values[0]] = int(value)
    return out


class EngineTelemetry:
    """Engine-lifetime aggregate of every executed query's counters.

    Backed by :mod:`repro.obs.metrics` primitives: every count is a
    per-instance :class:`~repro.obs.metrics.Counter` whose per-thread cells
    make ``record`` lock-free — process-pool result handlers and shard
    worker threads can feed one telemetry object without losing an
    increment to a read-modify-write race.  Reads sum the cells, exact at
    any quiescent point (no in-flight queries), which is the conservation
    contract the stress suite asserts.  Each recording also feeds the
    process-wide ``repro_engine_*`` families for the wire scrape.
    """

    def __init__(self) -> None:
        self._queries = Counter("queries_executed")
        self._pages = Counter("pages_read")
        self._io_ms = Counter("io_time_ms")
        self._comparisons = Counter("comparisons")
        self._results = Counter("results_returned")
        self._elapsed_ms = Counter("elapsed_ms")
        self._planning_ms = Counter("planning_ms")
        self._kernel_batches = Counter("kernel_batches")
        self._mutation_batches = Counter("mutation_batches")
        self._mutations_applied = Counter("mutations_applied")
        self._inserts = Counter("inserts")
        self._deletes = Counter("deletes")
        self._moves = Counter("moves")
        self._mutation_ms = Counter("mutation_ms")
        self._by_kind = Counter("by_kind", label_names=("kind",))
        self._by_strategy = Counter("by_strategy", label_names=("strategy",))
        self._by_backend = Counter("by_kernel_backend", label_names=("backend",))

    def record(self, stats: EngineStats) -> None:
        self._queries.inc()
        self._pages.inc(stats.pages_read)
        self._io_ms.inc(stats.io_time_ms)
        self._comparisons.inc(stats.comparisons)
        self._results.inc(stats.num_results)
        self._elapsed_ms.inc(stats.elapsed_ms)
        self._planning_ms.inc(stats.planning_ms)
        self._kernel_batches.inc(stats.kernel_batches)
        self._by_kind.labels(kind=stats.kind).inc()
        self._by_strategy.labels(strategy=stats.strategy).inc()
        if stats.kernel_backend:
            self._by_backend.labels(backend=stats.kernel_backend).inc()
            _Q_KERNEL_BATCHES.labels(backend=stats.kernel_backend).inc(
                stats.kernel_batches
            )
        _Q_TOTAL.labels(kind=stats.kind, strategy=stats.strategy).inc()
        _Q_RESULTS.inc(stats.num_results)
        _Q_LATENCY.labels(kind=stats.kind).observe(stats.elapsed_ms)

    def record_mutations(self, stats: "MutationStats") -> None:
        """Fold one ``apply_many`` batch's counters into the lifetime view."""
        self._mutation_batches.inc()
        self._mutations_applied.inc(stats.applied)
        self._inserts.inc(stats.inserts)
        self._deletes.inc(stats.deletes)
        self._moves.inc(stats.moves)
        self._mutation_ms.inc(stats.elapsed_ms)
        _M_TOTAL.labels(op="insert").inc(stats.inserts)
        _M_TOTAL.labels(op="delete").inc(stats.deletes)
        _M_TOTAL.labels(op="move").inc(stats.moves)

    # -- compat surface (the attributes the old dataclass exposed) ------------
    @property
    def queries_executed(self) -> int:
        return int(self._queries.value)

    @property
    def pages_read(self) -> int:
        return int(self._pages.value)

    @property
    def io_time_ms(self) -> float:
        return self._io_ms.value

    @property
    def comparisons(self) -> int:
        return int(self._comparisons.value)

    @property
    def results_returned(self) -> int:
        return int(self._results.value)

    @property
    def elapsed_ms(self) -> float:
        return self._elapsed_ms.value

    @property
    def planning_ms(self) -> float:
        return self._planning_ms.value

    @property
    def kernel_batches(self) -> int:
        return int(self._kernel_batches.value)

    @property
    def mutation_batches(self) -> int:
        return int(self._mutation_batches.value)

    @property
    def mutations_applied(self) -> int:
        return int(self._mutations_applied.value)

    @property
    def inserts(self) -> int:
        return int(self._inserts.value)

    @property
    def deletes(self) -> int:
        return int(self._deletes.value)

    @property
    def moves(self) -> int:
        return int(self._moves.value)

    @property
    def mutation_ms(self) -> float:
        return self._mutation_ms.value

    @property
    def by_kind(self) -> dict[str, int]:
        return _family_as_dict(self._by_kind)

    @property
    def by_strategy(self) -> dict[str, int]:
        return _family_as_dict(self._by_strategy)

    @property
    def by_kernel_backend(self) -> dict[str, int]:
        return _family_as_dict(self._by_backend)

    def render(self) -> str:
        table = Table(["metric", "value"], title="engine telemetry")
        table.add_row(["queries executed", self.queries_executed])
        table.add_row(["results returned", self.results_returned])
        table.add_row(["pages read", self.pages_read])
        table.add_row(["simulated I/O (ms)", self.io_time_ms])
        table.add_row(["comparisons", self.comparisons])
        table.add_row(["kernel batches", self.kernel_batches])
        for backend in sorted(self.by_kernel_backend):
            table.add_row([f"  via {backend} kernels", self.by_kernel_backend[backend]])
        table.add_row(["execution wall (ms)", self.elapsed_ms])
        table.add_row(["planning wall (ms)", self.planning_ms])
        if self.mutation_batches:
            table.add_row(["mutations applied", self.mutations_applied])
            table.add_row(["  inserts", self.inserts])
            table.add_row(["  deletes", self.deletes])
            table.add_row(["  moves", self.moves])
            table.add_row(["mutation wall (ms)", self.mutation_ms])
        for kind in sorted(self.by_kind):
            table.add_row([f"  {kind} queries", self.by_kind[kind]])
        for strategy in sorted(self.by_strategy):
            table.add_row([f"  via {strategy}", self.by_strategy[strategy]])
        return table.render()
