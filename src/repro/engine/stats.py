"""Uniform result envelopes and engine-lifetime telemetry.

Every executor in this package reports its work through the same three
counters — pages read, I/O time, pairwise comparisons — regardless of which
subsystem (FLAT, R-tree, TOUCH, SCOUT) did the work.  That uniformity is
what lets one telemetry object aggregate a mixed batch and one ``render``
path serve the CLI for all four query kinds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.mutations import MutationStats
    from repro.engine.planner import QueryPlan

__all__ = ["EngineStats", "EngineResult", "EngineTelemetry"]


@dataclass
class EngineStats:
    """The uniform per-query counters of one engine execution."""

    kind: str  # "range" | "knn" | "join" | "walk"
    strategy: str  # what actually ran (post-planning)
    pages_read: int = 0  # index node pages + data pages (0 for in-memory paths)
    io_time_ms: float = 0.0  # simulated-disk stall + prefetch I/O
    comparisons: int = 0  # MBR/entry tests performed
    num_results: int = 0
    elapsed_ms: float = 0.0  # wall-clock execution time
    planning_ms: float = 0.0  # wall-clock planner time
    kernel_batches: int = 0  # batch kernel calls issued during execution
    kernel_backend: str = ""  # kernel backend that served them

    def as_row(self) -> list[Any]:
        return [
            self.kind,
            self.strategy,
            self.num_results,
            self.pages_read,
            self.io_time_ms,
            self.comparisons,
            self.kernel_batches,
            self.elapsed_ms,
        ]


@dataclass
class EngineResult:
    """What every :meth:`SpatialEngine.execute` call returns.

    ``payload`` depends on the query kind:

    * range — ``list[int]`` of matching uids,
    * knn — ``list[tuple[int, float]]`` of ``(uid, distance)`` pairs,
    * join — ``list[tuple[int, int]]`` of ``(uid_a, uid_b)`` pairs,
    * walk — :class:`repro.core.scout.SessionMetrics`.

    ``raw`` carries the subsystem-native result object (e.g. the
    :class:`FLATQueryResult` or :class:`JoinResult`) for callers that need
    the full low-level counters.
    """

    payload: Any
    stats: EngineStats
    plan: "QueryPlan"
    raw: Any = None

    @property
    def num_results(self) -> int:
        return self.stats.num_results

    def render(self) -> str:
        table = Table(
            ["kind", "strategy", "results", "pages", "io ms", "comparisons", "batches", "exec ms"],
            title=f"engine result ({self.plan.describe()})",
        )
        table.add_row(self.stats.as_row())
        return table.render()


@dataclass
class EngineTelemetry:
    """Engine-lifetime aggregate of every executed query's counters.

    ``record`` is atomic under an internal lock: a telemetry object fed
    from several worker threads (the :class:`~repro.service.ShardedEngine`
    service) never loses an increment to a read-modify-write race.  Plain
    attribute reads remain lock-free — aggregate counters are monotone, so
    a reader sees a consistent-enough snapshot for reporting; use one
    quiescent point (no in-flight queries) for exact conservation checks.
    """

    queries_executed: int = 0
    pages_read: int = 0
    io_time_ms: float = 0.0
    comparisons: int = 0
    results_returned: int = 0
    elapsed_ms: float = 0.0
    planning_ms: float = 0.0
    kernel_batches: int = 0
    mutation_batches: int = 0
    mutations_applied: int = 0
    inserts: int = 0
    deletes: int = 0
    moves: int = 0
    mutation_ms: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    by_strategy: dict[str, int] = field(default_factory=dict)
    by_kernel_backend: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, stats: EngineStats) -> None:
        with self._lock:
            self.queries_executed += 1
            self.pages_read += stats.pages_read
            self.io_time_ms += stats.io_time_ms
            self.comparisons += stats.comparisons
            self.results_returned += stats.num_results
            self.elapsed_ms += stats.elapsed_ms
            self.planning_ms += stats.planning_ms
            self.kernel_batches += stats.kernel_batches
            self.by_kind[stats.kind] = self.by_kind.get(stats.kind, 0) + 1
            self.by_strategy[stats.strategy] = self.by_strategy.get(stats.strategy, 0) + 1
            if stats.kernel_backend:
                self.by_kernel_backend[stats.kernel_backend] = (
                    self.by_kernel_backend.get(stats.kernel_backend, 0) + 1
                )

    def record_mutations(self, stats: "MutationStats") -> None:
        """Fold one ``apply_many`` batch's counters into the lifetime view."""
        with self._lock:
            self.mutation_batches += 1
            self.mutations_applied += stats.applied
            self.inserts += stats.inserts
            self.deletes += stats.deletes
            self.moves += stats.moves
            self.mutation_ms += stats.elapsed_ms

    def render(self) -> str:
        table = Table(["metric", "value"], title="engine telemetry")
        table.add_row(["queries executed", self.queries_executed])
        table.add_row(["results returned", self.results_returned])
        table.add_row(["pages read", self.pages_read])
        table.add_row(["simulated I/O (ms)", self.io_time_ms])
        table.add_row(["comparisons", self.comparisons])
        table.add_row(["kernel batches", self.kernel_batches])
        for backend in sorted(self.by_kernel_backend):
            table.add_row([f"  via {backend} kernels", self.by_kernel_backend[backend]])
        table.add_row(["execution wall (ms)", self.elapsed_ms])
        table.add_row(["planning wall (ms)", self.planning_ms])
        if self.mutation_batches:
            table.add_row(["mutations applied", self.mutations_applied])
            table.add_row(["  inserts", self.inserts])
            table.add_row(["  deletes", self.deletes])
            table.add_row(["  moves", self.moves])
            table.add_row(["mutation wall (ms)", self.mutation_ms])
        for kind in sorted(self.by_kind):
            table.add_row([f"  {kind} queries", self.by_kind[kind]])
        for strategy in sorted(self.by_strategy):
            table.add_row([f"  via {strategy}", self.by_strategy[strategy]])
        return table.render()
