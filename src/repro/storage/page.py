"""Disk pages.

A page holds a fixed number of spatial objects (or one index node) and knows
the MBR of its contents, so page-level reasoning (FLAT partitions, prefetch
decisions) never has to touch the objects themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.geometry.aabb import AABB

if TYPE_CHECKING:
    from repro.storage.arena import BoundsView

__all__ = ["Page", "DEFAULT_PAGE_BYTES", "OBJECT_BYTES"]

#: Simulated page size; 8 KiB is the classic DBMS default.
DEFAULT_PAGE_BYTES = 8192

#: Modelled on-disk footprint of one capsule segment:
#: uid (8) + 2 endpoints (2*3*8) + radius (8) + provenance (3*4) + slack.
OBJECT_BYTES = 96


@dataclass(frozen=True, slots=True)
class Page:
    """An immutable snapshot of a disk page.

    ``object_uids`` are the object ids stored on the page; ``mbr`` bounds
    their geometry.  ``byte_size`` is the modelled physical footprint.
    ``bounds`` is the per-object bounds column view in ``object_uids`` order;
    because pages are immutable snapshots, the view (and its packed memo) is
    valid for the lifetime of the page — maintenance stores a *new* page.
    """

    page_id: int
    object_uids: tuple[int, ...]
    mbr: AABB
    byte_size: int = field(default=DEFAULT_PAGE_BYTES)
    bounds: "BoundsView | None" = field(default=None, repr=False, compare=False)

    @property
    def num_objects(self) -> int:
        return len(self.object_uids)

    def __contains__(self, uid: int) -> bool:
        return uid in self.object_uids
