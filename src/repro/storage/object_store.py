"""Object store: spatial objects clustered into disk pages.

Objects are sorted along the Hilbert curve of their AABB centres and chunked
into fixed-capacity pages, the standard clustering for spatial data at rest.
The store is the ground truth for "which pages does this result set live on",
which is what every I/O statistic in the FLAT and SCOUT experiments counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.geometry.aabb import AABB
from repro.hilbert.curve import HilbertEncoder3D
from repro.objects import SpatialObject
from repro.storage.disk import Disk
from repro.storage.page import DEFAULT_PAGE_BYTES, OBJECT_BYTES, Page

__all__ = ["ObjectStore"]


class ObjectStore:
    """Immutable, page-clustered storage for a dataset of spatial objects.

    Parameters
    ----------
    objects:
        The dataset; uids must be unique.
    disk:
        The simulated device pages are written to.  A fresh :class:`Disk` is
        created when omitted.
    page_capacity:
        Objects per page.  Defaults to ``DEFAULT_PAGE_BYTES // OBJECT_BYTES``
        (85 segments per 8 KiB page).
    hilbert_order:
        Grid resolution of the clustering curve.
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        disk: Disk | None = None,
        page_capacity: int | None = None,
        hilbert_order: int = 10,
    ) -> None:
        if not objects:
            raise StorageError("object store requires a non-empty dataset")
        if page_capacity is None:
            page_capacity = DEFAULT_PAGE_BYTES // OBJECT_BYTES
        if page_capacity < 1:
            raise StorageError("page capacity must be >= 1")

        self.disk = disk if disk is not None else Disk()
        self.page_capacity = page_capacity
        self.world = AABB.union_all(obj.aabb for obj in objects)
        self._objects: dict[int, SpatialObject] = {}
        for obj in objects:
            if obj.uid in self._objects:
                raise StorageError(f"duplicate object uid {obj.uid}")
            self._objects[obj.uid] = obj

        encoder = HilbertEncoder3D(self.world, order=hilbert_order)
        keys = encoder.keys_of_boxes([o.aabb for o in objects])
        ordered = [obj for _, _, obj in sorted(zip(keys, range(len(keys)), objects))]

        self._page_of_uid: dict[int, int] = {}
        self._pages: list[Page] = []
        for start in range(0, len(ordered), page_capacity):
            chunk = ordered[start : start + page_capacity]
            page_id = len(self._pages)
            mbr = AABB.union_all(o.aabb for o in chunk)
            page = Page(
                page_id=page_id,
                object_uids=tuple(o.uid for o in chunk),
                mbr=mbr,
                byte_size=DEFAULT_PAGE_BYTES,
            )
            self._pages.append(page)
            self.disk.store(page)
            for o in chunk:
                self._page_of_uid[o.uid] = page_id

    # -- lookups ------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def object(self, uid: int) -> SpatialObject:
        try:
            return self._objects[uid]
        except KeyError:
            raise StorageError(f"unknown object uid {uid}") from None

    def objects(self) -> Iterable[SpatialObject]:
        return self._objects.values()

    def page(self, page_id: int) -> Page:
        try:
            return self._pages[page_id]
        except IndexError:
            raise StorageError(f"unknown page id {page_id}") from None

    def pages(self) -> Sequence[Page]:
        return tuple(self._pages)

    def page_of(self, uid: int) -> int:
        try:
            return self._page_of_uid[uid]
        except KeyError:
            raise StorageError(f"unknown object uid {uid}") from None

    def pages_for_uids(self, uids: Iterable[int]) -> list[int]:
        """Distinct page ids holding ``uids`` (sorted, deduplicated)."""
        return sorted({self.page_of(uid) for uid in uids})

    def objects_on_page(self, page_id: int) -> list[SpatialObject]:
        return [self._objects[uid] for uid in self.page(page_id).object_uids]

    def total_bytes(self) -> int:
        return sum(p.byte_size for p in self._pages)
