"""Object store: spatial objects clustered into disk pages.

Objects are sorted along the Hilbert curve of their AABB centres and chunked
into fixed-capacity pages, the standard clustering for spatial data at rest.
The store is the ground truth for "which pages does this result set live on",
which is what every I/O statistic in the FLAT and SCOUT experiments counts.

The store consumes either a plain object sequence or a
:class:`~repro.storage.arena.ColumnarArena`.  Arena-backed stores cluster
straight from the bounds column — no object is materialized to lay out the
pages — and lazily materialize objects only when a caller asks for them.
Every page carries a :class:`~repro.storage.arena.BoundsView` over its
objects' bounds, so query paths pack kernel arrays from the page itself.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import StorageError
from repro.geometry.aabb import AABB
from repro.hilbert.curve import HilbertEncoder3D
from repro.objects import SpatialObject
from repro.storage.arena import BoundsView, ColumnarArena
from repro.storage.disk import Disk
from repro.storage.page import DEFAULT_PAGE_BYTES, OBJECT_BYTES, Page

__all__ = ["ObjectStore"]


class ObjectStore:
    """Immutable, page-clustered storage for a dataset of spatial objects.

    Parameters
    ----------
    objects:
        The dataset — a sequence of objects (uids must be unique) or a
        :class:`~repro.storage.arena.ColumnarArena`, whose *live* rows at
        construction time define the dataset.
    disk:
        The simulated device pages are written to.  A fresh :class:`Disk` is
        created when omitted.
    page_capacity:
        Objects per page.  Defaults to ``DEFAULT_PAGE_BYTES // OBJECT_BYTES``
        (85 segments per 8 KiB page).
    hilbert_order:
        Grid resolution of the clustering curve.
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject] | ColumnarArena,
        disk: Disk | None = None,
        page_capacity: int | None = None,
        hilbert_order: int = 10,
    ) -> None:
        if not len(objects):
            raise StorageError("object store requires a non-empty dataset")
        if page_capacity is None:
            page_capacity = DEFAULT_PAGE_BYTES // OBJECT_BYTES
        if page_capacity < 1:
            raise StorageError("page capacity must be >= 1")

        self.disk = disk if disk is not None else Disk()
        self.page_capacity = page_capacity

        self._arena: ColumnarArena | None = None
        self._materialized: dict[int, SpatialObject] | None = None
        if isinstance(objects, ColumnarArena):
            # Columns straight from the arena; objects stay unmaterialized.
            self._arena = objects
            uids = objects.live_uids()
            bounds = objects.live_bounds()
            self.world = objects.world()
        else:
            self._materialized = {}
            for obj in objects:
                if obj.uid in self._materialized:
                    raise StorageError(f"duplicate object uid {obj.uid}")
                self._materialized[obj.uid] = obj
            uids = [obj.uid for obj in objects]
            bounds = [obj.aabb.bounds() for obj in objects]
            self.world = AABB.union_all(obj.aabb for obj in objects)

        encoder = HilbertEncoder3D(self.world, order=hilbert_order)
        centers = [
            ((b[0] + b[3]) / 2.0, (b[1] + b[4]) / 2.0, (b[2] + b[5]) / 2.0)
            for b in bounds
        ]
        keys = encoder.keys_of(centers)
        ordered = sorted(range(len(uids)), key=lambda i: (keys[i], i))

        self._page_of_uid: dict[int, int] = {}
        self._pages: list[Page] = []
        for start in range(0, len(ordered), page_capacity):
            chunk = ordered[start : start + page_capacity]
            chunk_bounds = [bounds[i] for i in chunk]
            page_id = len(self._pages)
            page = Page(
                page_id=page_id,
                object_uids=tuple(uids[i] for i in chunk),
                mbr=AABB.union_all(AABB(*b) for b in chunk_bounds),
                byte_size=DEFAULT_PAGE_BYTES,
                bounds=BoundsView(chunk_bounds),
            )
            self._pages.append(page)
            self.disk.store(page)
            for i in chunk:
                self._page_of_uid[uids[i]] = page_id

    # -- lookups ------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self._page_of_uid)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def object(self, uid: int) -> SpatialObject:
        if uid not in self._page_of_uid:
            raise StorageError(f"unknown object uid {uid}")
        if self._arena is not None:
            return self._arena.object(uid)
        assert self._materialized is not None
        return self._materialized[uid]

    def objects(self) -> Iterable[SpatialObject]:
        if self._arena is not None:
            return [self._arena.object(uid) for uid in self._page_of_uid]
        assert self._materialized is not None
        return self._materialized.values()

    def page(self, page_id: int) -> Page:
        try:
            return self._pages[page_id]
        except IndexError:
            raise StorageError(f"unknown page id {page_id}") from None

    def pages(self) -> Sequence[Page]:
        return tuple(self._pages)

    def page_of(self, uid: int) -> int:
        try:
            return self._page_of_uid[uid]
        except KeyError:
            raise StorageError(f"unknown object uid {uid}") from None

    def pages_for_uids(self, uids: Iterable[int]) -> list[int]:
        """Distinct page ids holding ``uids`` (sorted, deduplicated)."""
        return sorted({self.page_of(uid) for uid in uids})

    def objects_on_page(self, page_id: int) -> list[SpatialObject]:
        return [self.object(uid) for uid in self.page(page_id).object_uids]

    def total_bytes(self) -> int:
        return sum(p.byte_size for p in self._pages)
