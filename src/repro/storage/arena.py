"""Columnar arena — structure-of-arrays storage as the source of truth.

The paper's storage argument is that neuroscience-scale spatial data should
be laid out for the access path, not as an object graph.  The arena keeps
packed columns (uids, AABB bounds, segment endpoints/radii, provenance) as
the canonical representation; :class:`~repro.objects.BoxObject` and
:class:`~repro.geometry.Segment` instances are materialized on demand and
cached per row.

Two pieces are exported:

* :class:`BoundsView` — an immutable carrier for a batch of AABB bounds with
  a per-backend packed-array memo.  Pages and R-tree nodes hold one of these
  instead of maintaining version-invalidated pack caches: when content
  changes, a *new* view is built, so a view in hand is valid forever.
* :class:`ColumnarArena` — append/tombstone/compact columns with an epoch
  stamp.  Snapshots are copy-on-write column slices: immutable tuples cached
  per epoch, so repeated snapshots of an unchanged arena are free and a
  snapshot taken before a mutation is never affected by it.

Deletion uses swap-remove on the *live order* (the last live row takes the
deleted row's position), matching the engine's historical ``objects`` list
semantics so dataset profiles and index build layouts are unchanged.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro import kernels
from repro.errors import EngineError
from repro.geometry.aabb import AABB
from repro.geometry.segment import Segment
from repro.geometry.vec import Vec3
from repro.hilbert.curve import HilbertEncoder3D
from repro.objects import BoxObject, SpatialObject

__all__ = [
    "BoundsView",
    "ColumnarArena",
    "ArenaSnapshot",
    "KIND_BOX",
    "KIND_SEGMENT",
    "KIND_OPAQUE",
]

#: Row kinds.  Opaque rows keep the original object (it cannot be rebuilt
#: from columns); box/segment rows materialize purely from column data.
KIND_BOX = 0
KIND_SEGMENT = 1
KIND_OPAQUE = 2

_ZERO3 = (0.0, 0.0, 0.0)

#: Packed-arena layout (shared-memory publication): magic, ``<epoch,
#: num_rows>``, then one fixed-width record per live row in live order —
#: the same ``(kind, uid, 6 bounds, p0, p1, radius, neuron, branch,
#: order)`` record the binary v2 checkpoint uses.  Live order is part of
#: the format: an attached arena must rebuild the exact same engine
#: (profiles, index layouts) the publishing side would.
_PACK_MAGIC = b"RPRSHM1\n"
_PACK_HEADER = struct.Struct("<qQ")
_PACK_ROW = struct.Struct("<qq13dqqq")


class BoundsView:
    """An immutable batch of AABB bounds with per-backend packed memos.

    Validity is by immutability: a view never changes after construction, so
    holders (pages, R-tree nodes) need no invalidation protocol — changed
    content means a new view.  ``packed()`` lazily builds and memoizes the
    active kernel backend's packed representation.
    """

    __slots__ = ("_bounds", "_packs")

    def __init__(self, bounds: Iterable[tuple[float, float, float, float, float, float]]):
        self._bounds = tuple(bounds)
        self._packs: dict[str, object] = {}

    @classmethod
    def of_boxes(cls, boxes: Iterable[AABB]) -> "BoundsView":
        return cls(box.bounds() for box in boxes)

    @classmethod
    def of_objects(cls, objects: Iterable[SpatialObject]) -> "BoundsView":
        return cls(obj.aabb.bounds() for obj in objects)

    @property
    def bounds(self) -> tuple[tuple[float, float, float, float, float, float], ...]:
        return self._bounds

    def __len__(self) -> int:
        return len(self._bounds)

    def packed(self) -> object:
        """The active backend's packed form of these bounds (memoized)."""
        token = kernels.pack_token()
        pack = self._packs.get(token)
        if pack is None:
            pack = kernels.pack_bounds(self._bounds)
            self._packs[token] = pack
        return pack


@dataclass(frozen=True)
class ArenaSnapshot:
    """Copy-on-write column slices of the live rows at one epoch.

    Every field is an immutable tuple in live order; mutating the arena after
    taking a snapshot cannot affect it.  Snapshots at the same epoch share
    storage (the arena caches the last one).
    """

    epoch: int
    uids: tuple[int, ...]
    kinds: tuple[int, ...]
    bounds: tuple[tuple[float, float, float, float, float, float], ...]
    p0: tuple[tuple[float, float, float], ...]
    p1: tuple[tuple[float, float, float], ...]
    radius: tuple[float, ...]
    neuron: tuple[int, ...]
    branch: tuple[int, ...]
    order: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.uids)


class ColumnarArena:
    """Structure-of-arrays object storage with tombstones and COW snapshots.

    Columns are parallel Python lists indexed by *row*; live rows are tracked
    in ``_live_rows`` (append on insert, swap-remove on tombstone) and looked
    up through ``_pos_of_uid``.  Mutations bump ``epoch``; materialized
    objects, bounds views and snapshots are cached per row / per epoch.
    """

    __slots__ = (
        "uids",
        "kinds",
        "bounds",
        "p0",
        "p1",
        "radius",
        "neuron",
        "branch",
        "order",
        "_objects",
        "_live_rows",
        "_pos_of_uid",
        "_epoch",
        "_dead_rows",
        "_live_cache",
        "_view_cache",
        "_snapshot_cache",
        "_world_cache",
    )

    def __init__(self) -> None:
        self.uids: list[int] = []
        self.kinds: list[int] = []
        self.bounds: list[tuple[float, float, float, float, float, float]] = []
        self.p0: list[tuple[float, float, float]] = []
        self.p1: list[tuple[float, float, float]] = []
        self.radius: list[float] = []
        self.neuron: list[int] = []
        self.branch: list[int] = []
        self.order: list[int] = []
        self._objects: list[SpatialObject | None] = []
        self._live_rows: list[int] = []
        self._pos_of_uid: dict[int, int] = {}
        self._epoch = 0
        self._dead_rows = 0
        self._live_cache: list[SpatialObject] | None = None
        self._view_cache: tuple[int, BoundsView] | None = None
        self._snapshot_cache: ArenaSnapshot | None = None
        self._world_cache: tuple[int, AABB] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_objects(cls, objects: Iterable[SpatialObject]) -> "ColumnarArena":
        arena = cls()
        for obj in objects:
            arena.append(obj)
        return arena

    # -- introspection -----------------------------------------------------

    @property
    def epoch(self) -> int:
        """Bumped on every mutation; snapshot/view caches key off it."""
        return self._epoch

    @property
    def num_live(self) -> int:
        return len(self._live_rows)

    @property
    def num_dead(self) -> int:
        return self._dead_rows

    def __len__(self) -> int:
        return len(self._live_rows)

    def __contains__(self, uid: int) -> bool:
        return uid in self._pos_of_uid

    def contains(self, uid: int) -> bool:
        return uid in self._pos_of_uid

    # -- mutation ----------------------------------------------------------

    def append(self, obj: SpatialObject) -> None:
        """Append one object's columns; O(1) list/dict work."""
        uid = obj.uid
        if uid in self._pos_of_uid:
            raise EngineError(f"duplicate object uid {uid} in dataset")
        row = len(self.uids)
        self._append_columns_of(obj)
        self._pos_of_uid[uid] = len(self._live_rows)
        self._live_rows.append(row)
        self._bump()

    def tombstone(self, uid: int) -> SpatialObject:
        """Remove ``uid`` from the live set (swap-remove on live order).

        The row's column data stays in place until :meth:`compact`; only the
        live-order bookkeeping changes, so this is O(1).
        """
        pos = self._pos_of_uid.get(uid)
        if pos is None:
            raise EngineError(f"cannot delete unknown uid {uid}")
        old = self.materialize(self._live_rows[pos])
        last = self._live_rows.pop()
        if pos < len(self._live_rows):
            self._live_rows[pos] = last
            self._pos_of_uid[self.uids[last]] = pos
        del self._pos_of_uid[uid]
        self._dead_rows += 1
        self._bump()
        return old

    def replace(self, obj: SpatialObject) -> SpatialObject:
        """Replace the geometry of ``obj.uid`` in place (live position kept)."""
        uid = obj.uid
        pos = self._pos_of_uid.get(uid)
        if pos is None:
            raise EngineError(f"cannot move unknown uid {uid}")
        row = self._live_rows[pos]
        old = self.materialize(row)
        # Appending a fresh row and retargeting the live slot keeps rows
        # write-once, which is what lets snapshots share column storage.
        new_row = len(self.uids)
        self._append_columns_of(obj)
        self._live_rows[pos] = new_row
        self._dead_rows += 1
        self._bump()
        return old

    def compact(self) -> int:
        """Drop dead rows, rewriting columns in live order; returns rows freed.

        Live content is unchanged, so the epoch is *not* bumped and existing
        snapshots/views stay valid.
        """
        dead = self._dead_rows
        if dead == 0:
            return 0
        rows = self._live_rows
        self.uids = [self.uids[r] for r in rows]
        self.kinds = [self.kinds[r] for r in rows]
        self.bounds = [self.bounds[r] for r in rows]
        self.p0 = [self.p0[r] for r in rows]
        self.p1 = [self.p1[r] for r in rows]
        self.radius = [self.radius[r] for r in rows]
        self.neuron = [self.neuron[r] for r in rows]
        self.branch = [self.branch[r] for r in rows]
        self.order = [self.order[r] for r in rows]
        self._objects = [self._objects[r] for r in rows]
        self._live_rows = list(range(len(rows)))
        self._dead_rows = 0
        return dead

    def maybe_compact(self, *, slack: int = 64) -> int:
        """Compact once dead rows outnumber ``max(slack, live rows)``."""
        if self._dead_rows > max(slack, len(self._live_rows)):
            return self.compact()
        return 0

    def _append_columns_of(self, obj: SpatialObject) -> None:
        self.uids.append(obj.uid)
        if isinstance(obj, Segment):
            p0 = obj.p0
            p1 = obj.p1
            self.kinds.append(KIND_SEGMENT)
            self.bounds.append(obj.aabb.bounds())
            self.p0.append((p0.x, p0.y, p0.z))
            self.p1.append((p1.x, p1.y, p1.z))
            self.radius.append(obj.radius)
            self.neuron.append(obj.neuron_id)
            self.branch.append(obj.branch_id)
            self.order.append(obj.order)
        elif isinstance(obj, BoxObject):
            self.kinds.append(KIND_BOX)
            self.bounds.append(obj.box.bounds())
            self.p0.append(_ZERO3)
            self.p1.append(_ZERO3)
            self.radius.append(0.0)
            self.neuron.append(-1)
            self.branch.append(-1)
            self.order.append(-1)
        else:
            self.kinds.append(KIND_OPAQUE)
            self.bounds.append(obj.aabb.bounds())
            self.p0.append(_ZERO3)
            self.p1.append(_ZERO3)
            self.radius.append(0.0)
            self.neuron.append(-1)
            self.branch.append(-1)
            self.order.append(-1)
        self._objects.append(obj)

    def _bump(self) -> None:
        self._epoch += 1
        self._live_cache = None
        self._snapshot_cache = None

    # -- reads -------------------------------------------------------------

    def materialize(self, row: int) -> SpatialObject:
        """The object at ``row``, built from columns on first access."""
        obj = self._objects[row]
        if obj is None:
            kind = self.kinds[row]
            if kind == KIND_SEGMENT:
                obj = Segment(
                    uid=self.uids[row],
                    p0=Vec3(*self.p0[row]),
                    p1=Vec3(*self.p1[row]),
                    radius=self.radius[row],
                    neuron_id=self.neuron[row],
                    branch_id=self.branch[row],
                    order=self.order[row],
                )
            else:
                obj = BoxObject(uid=self.uids[row], box=AABB(*self.bounds[row]))
            self._objects[row] = obj
        return obj

    def object(self, uid: int) -> SpatialObject:
        pos = self._pos_of_uid.get(uid)
        if pos is None:
            raise EngineError(f"unknown uid {uid}")
        return self.materialize(self._live_rows[pos])

    def get(self, uid: int) -> SpatialObject | None:
        pos = self._pos_of_uid.get(uid)
        if pos is None:
            return None
        return self.materialize(self._live_rows[pos])

    def aabb_of(self, uid: int) -> AABB:
        pos = self._pos_of_uid.get(uid)
        if pos is None:
            raise EngineError(f"unknown uid {uid}")
        return AABB(*self.bounds[self._live_rows[pos]])

    def live_objects(self) -> list[SpatialObject]:
        """Live objects in live order (cached per epoch; treat as read-only)."""
        cached = self._live_cache
        if cached is None:
            cached = [self.materialize(row) for row in self._live_rows]
            self._live_cache = cached
        return cached

    def iter_live(self) -> Iterator[SpatialObject]:
        for row in self._live_rows:
            yield self.materialize(row)

    def live_uids(self) -> list[int]:
        return [self.uids[row] for row in self._live_rows]

    def live_bounds(self) -> list[tuple[float, float, float, float, float, float]]:
        return [self.bounds[row] for row in self._live_rows]

    def bounds_view(self) -> BoundsView:
        """A :class:`BoundsView` over the live rows (cached per epoch)."""
        cached = self._view_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        view = BoundsView(self.bounds[row] for row in self._live_rows)
        self._view_cache = (self._epoch, view)
        return view

    def world(self) -> AABB:
        """Union of all live bounds (cached per epoch)."""
        cached = self._world_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        if not self._live_rows:
            raise EngineError("arena is empty")
        min_x = min_y = min_z = float("inf")
        max_x = max_y = max_z = float("-inf")
        for row in self._live_rows:
            b = self.bounds[row]
            if b[0] < min_x:
                min_x = b[0]
            if b[1] < min_y:
                min_y = b[1]
            if b[2] < min_z:
                min_z = b[2]
            if b[3] > max_x:
                max_x = b[3]
            if b[4] > max_y:
                max_y = b[4]
            if b[5] > max_z:
                max_z = b[5]
        world = AABB(min_x, min_y, min_z, max_x, max_y, max_z)
        self._world_cache = (self._epoch, world)
        return world

    def hilbert_keys(self, *, order: int = 10, world: AABB | None = None) -> list[int]:
        """Hilbert key column for the live rows (computed from bounds centers)."""
        encoder = HilbertEncoder3D(world if world is not None else self.world(), order)
        keys: list[int] = []
        for row in self._live_rows:
            b = self.bounds[row]
            center = ((b[0] + b[3]) / 2.0, (b[1] + b[4]) / 2.0, (b[2] + b[5]) / 2.0)
            keys.append(encoder.key(center))
        return keys

    def snapshot(self) -> ArenaSnapshot:
        """Epoch-stamped COW column slices of the live rows."""
        cached = self._snapshot_cache
        if cached is not None and cached.epoch == self._epoch:
            return cached
        rows = self._live_rows
        snap = ArenaSnapshot(
            epoch=self._epoch,
            uids=tuple(self.uids[r] for r in rows),
            kinds=tuple(self.kinds[r] for r in rows),
            bounds=tuple(self.bounds[r] for r in rows),
            p0=tuple(self.p0[r] for r in rows),
            p1=tuple(self.p1[r] for r in rows),
            radius=tuple(self.radius[r] for r in rows),
            neuron=tuple(self.neuron[r] for r in rows),
            branch=tuple(self.branch[r] for r in rows),
            order=tuple(self.order[r] for r in rows),
        )
        self._snapshot_cache = snap
        return snap

    @classmethod
    def from_snapshot(cls, snap: ArenaSnapshot | "ColumnarArena") -> "ColumnarArena":
        """Rebuild an arena from snapshot columns without materializing objects."""
        arena = cls()
        source: ArenaSnapshot | ColumnarArena = snap
        if isinstance(source, ColumnarArena):
            source = source.snapshot()
        n = len(source.uids)
        arena.uids = list(source.uids)
        arena.kinds = list(source.kinds)
        arena.bounds = list(source.bounds)
        arena.p0 = list(source.p0)
        arena.p1 = list(source.p1)
        arena.radius = list(source.radius)
        arena.neuron = list(source.neuron)
        arena.branch = list(source.branch)
        arena.order = list(source.order)
        arena._objects = [None] * n
        arena._live_rows = list(range(n))
        arena._pos_of_uid = {uid: i for i, uid in enumerate(source.uids)}
        if len(arena._pos_of_uid) != n:
            raise EngineError("snapshot contains duplicate uids")
        return arena

    def restore(self, snap: ArenaSnapshot) -> None:
        """Reset the live set to exactly ``snap``'s content, in place.

        The restore rewrites every column from the snapshot's copy-on-write
        slices rather than reusing stored row indices: rows recorded before
        a :meth:`compact` point at positions the compaction has since
        rewritten, so replaying old indices could resurrect tombstoned rows
        or mismap live slots.  Rebuilding from the snapshot's own columns is
        immune to any interleaved churn (insert/delete/move, compaction).

        The epoch is bumped — a restore is a mutation of the live set — so
        snapshots, bounds views and materialization caches all invalidate.
        """
        n = len(snap.uids)
        pos_of_uid = {uid: i for i, uid in enumerate(snap.uids)}
        if len(pos_of_uid) != n:
            raise EngineError("snapshot contains duplicate uids")
        self.uids = list(snap.uids)
        self.kinds = list(snap.kinds)
        self.bounds = list(snap.bounds)
        self.p0 = list(snap.p0)
        self.p1 = list(snap.p1)
        self.radius = list(snap.radius)
        self.neuron = list(snap.neuron)
        self.branch = list(snap.branch)
        self.order = list(snap.order)
        self._objects = [None] * n
        self._live_rows = list(range(n))
        self._pos_of_uid = pos_of_uid
        self._dead_rows = 0
        self._view_cache = None
        self._world_cache = None
        self._bump()

    # -- shared-memory publication -----------------------------------------

    def pack_payload(self, *, epoch: int | None = None) -> bytes:
        """The live rows as one fixed-width binary block (live order kept).

        This is what the process-pool service publishes into a
        ``multiprocessing.shared_memory`` segment: header (magic, epoch
        stamp, row count) plus one record per live row.  Opaque rows are
        refused — they carry arbitrary Python objects that cannot be
        rebuilt from columns on the other side of a process boundary.
        """
        stamp = self._epoch if epoch is None else epoch
        out = bytearray(_PACK_MAGIC)
        out += _PACK_HEADER.pack(stamp, len(self._live_rows))
        for row in self._live_rows:
            kind = self.kinds[row]
            if kind == KIND_OPAQUE:
                raise EngineError(
                    f"cannot pack opaque object uid {self.uids[row]} for shared "
                    "memory; process-mode services need box or segment objects"
                )
            out += _PACK_ROW.pack(
                kind,
                self.uids[row],
                *self.bounds[row],
                *self.p0[row],
                *self.p1[row],
                self.radius[row],
                self.neuron[row],
                self.branch[row],
                self.order[row],
            )
        return bytes(out)

    @classmethod
    def from_packed(cls, buffer) -> tuple[int, "ColumnarArena"]:
        """Decode a :meth:`pack_payload` block into ``(epoch, arena)``.

        ``buffer`` may be any buffer-protocol object — typically the
        mapped view of a shared-memory segment.  The columns are copied out
        of the buffer (the segment stays read-only and can be unmapped
        freely once this returns); live order is preserved exactly.
        """
        data = bytes(buffer)
        if not data.startswith(_PACK_MAGIC):
            raise EngineError("packed arena block has a bad magic")
        offset = len(_PACK_MAGIC)
        try:
            stamp, num_rows = _PACK_HEADER.unpack_from(data, offset)
            offset += _PACK_HEADER.size
            expected = offset + num_rows * _PACK_ROW.size
            if len(data) < expected:
                raise EngineError("packed arena block is truncated")
            arena = cls()
            for fields in _PACK_ROW.iter_unpack(data[offset:expected]):
                kind, uid = fields[0], fields[1]
                arena.uids.append(uid)
                arena.kinds.append(kind)
                arena.bounds.append(fields[2:8])
                arena.p0.append(fields[8:11])
                arena.p1.append(fields[11:14])
                arena.radius.append(fields[14])
                arena.neuron.append(fields[15])
                arena.branch.append(fields[16])
                arena.order.append(fields[17])
        except struct.error as error:
            raise EngineError(f"packed arena block is undecodable: {error}") from error
        arena._objects = [None] * num_rows
        arena._live_rows = list(range(num_rows))
        arena._pos_of_uid = {uid: i for i, uid in enumerate(arena.uids)}
        if len(arena._pos_of_uid) != num_rows:
            raise EngineError("packed arena block contains duplicate uids")
        return stamp, arena

    def rows_for(self, uids: Sequence[int]) -> list[int]:
        """Row indices of the given live uids (in the given order)."""
        rows = []
        for uid in uids:
            pos = self._pos_of_uid.get(uid)
            if pos is None:
                raise EngineError(f"unknown uid {uid}")
            rows.append(self._live_rows[pos])
        return rows

    def bounds_view_for(self, uids: Sequence[int]) -> BoundsView:
        """A :class:`BoundsView` over specific live uids (column slices)."""
        return BoundsView(self.bounds[row] for row in self.rows_for(uids))
