"""Paged storage substrate.

The Blue Brain tools run over data stored on disk in pages; the paper's demo
screens report "disk pages retrieved" and I/O time.  This package provides a
deterministic stand-in: a simulated disk with a seek+transfer cost model, an
LRU buffer pool and an object store that clusters spatial objects into
fixed-capacity pages in Hilbert order.
"""

from repro.storage.arena import ArenaSnapshot, BoundsView, ColumnarArena
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import Disk, DiskParameters, IOStats
from repro.storage.object_store import ObjectStore
from repro.storage.page import Page

__all__ = [
    "ArenaSnapshot",
    "BoundsView",
    "BufferPool",
    "ColumnarArena",
    "Disk",
    "DiskParameters",
    "IOStats",
    "ObjectStore",
    "Page",
]
