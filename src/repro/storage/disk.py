"""Simulated disk with a deterministic cost model.

The paper's numbers were taken on real disk arrays attached to a BlueGene/P;
this reproduction replaces the hardware with a cost model so that "disk pages
retrieved" and "I/O time" are exact and machine-independent:

* every page read off the platter costs ``read_latency_ms``
  (seek + rotational + transfer, collapsed into one constant),
* a read that follows the immediately preceding page id is *sequential* and
  costs only ``sequential_latency_ms`` (no seek), matching the behaviour
  FLAT's Hilbert-clustered crawl exploits,
* buffer-pool hits cost ``hit_latency_ms``.

The relative ordering of the paper's techniques is insensitive to the exact
constants (see benchmarks/bench_ablations.py for a sensitivity sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PageNotFoundError
from repro.storage.page import Page

__all__ = ["Disk", "DiskParameters", "IOStats"]


@dataclass(frozen=True, slots=True)
class DiskParameters:
    """Latency constants (milliseconds) of the simulated device."""

    read_latency_ms: float = 5.0
    sequential_latency_ms: float = 0.5
    hit_latency_ms: float = 0.01

    def __post_init__(self) -> None:
        if min(self.read_latency_ms, self.sequential_latency_ms, self.hit_latency_ms) < 0:
            raise ValueError("latencies must be non-negative")


@dataclass
class IOStats:
    """Counters accumulated by a :class:`Disk` (and surfaced per query)."""

    page_reads: int = 0
    sequential_reads: int = 0
    io_time_ms: float = 0.0

    def snapshot(self) -> "IOStats":
        return IOStats(self.page_reads, self.sequential_reads, self.io_time_ms)

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        return IOStats(
            self.page_reads - earlier.page_reads,
            self.sequential_reads - earlier.sequential_reads,
            self.io_time_ms - earlier.io_time_ms,
        )

    def merged_with(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.page_reads + other.page_reads,
            self.sequential_reads + other.sequential_reads,
            self.io_time_ms + other.io_time_ms,
        )


@dataclass
class Disk:
    """A dictionary of pages fronted by the cost model above."""

    params: DiskParameters = field(default_factory=DiskParameters)
    _pages: dict[int, Page] = field(default_factory=dict)
    stats: IOStats = field(default_factory=IOStats)
    _last_page_id: int | None = field(default=None, repr=False)
    _versions: dict[int, int] = field(default_factory=dict, repr=False)

    def store(self, page: Page) -> None:
        """Write a page (index building is not part of measured query I/O).

        Every store bumps the page's version, which is how buffer pools and
        pack caches detect that a frame they hold went stale after index
        maintenance rewrote the page in place.
        """
        self._pages[page.page_id] = page
        self._versions[page.page_id] = self._versions.get(page.page_id, 0) + 1

    def version_of(self, page_id: int) -> int:
        """Monotone write-version of a page (0 for never-stored pages)."""
        return self._versions.get(page_id, 0)

    def has_page(self, page_id: int) -> bool:
        return page_id in self._pages

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def page_ids(self) -> list[int]:
        return list(self._pages)

    def read(self, page_id: int) -> tuple[Page, float]:
        """Fetch a page from the platter; returns ``(page, latency_ms)``."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        sequential = self._last_page_id is not None and page_id == self._last_page_id + 1
        latency = (
            self.params.sequential_latency_ms if sequential else self.params.read_latency_ms
        )
        self.stats.page_reads += 1
        if sequential:
            self.stats.sequential_reads += 1
        self.stats.io_time_ms += latency
        self._last_page_id = page_id
        return page, latency

    def peek(self, page_id: int) -> Page:
        """Inspect a page without touching the counters (test/debug use)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None

    def reset_stats(self) -> None:
        self.stats = IOStats()
        self._last_page_id = None
