"""LRU buffer pool over the simulated disk.

The pool distinguishes *demand* fetches (on the query's critical path; a miss
stalls the user) from *prefetch* fetches (issued during the scientist's think
time between queries of a sequence; their latency is off the critical path
but still consumes I/O).  This split is exactly what the SCOUT demo's
counters report: total prefetched, correctly prefetched (prefetched pages
later hit by a demand fetch) and additionally retrieved (demand misses).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.disk import Disk
from repro.storage.page import Page

__all__ = ["BufferPool", "BufferStats"]


@dataclass
class BufferStats:
    """Counters surfaced by the pool; all monotonically increasing."""

    demand_fetches: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_issued: int = 0
    prefetch_used: int = 0
    stall_time_ms: float = 0.0
    prefetch_io_ms: float = 0.0
    evictions: int = 0
    stale_refetches: int = 0  # frames re-read because the page was rewritten

    @property
    def hit_ratio(self) -> float:
        if self.demand_fetches == 0:
            return 0.0
        return self.demand_hits / self.demand_fetches

    def snapshot(self) -> "BufferStats":
        return BufferStats(
            self.demand_fetches,
            self.demand_hits,
            self.demand_misses,
            self.prefetch_issued,
            self.prefetch_used,
            self.stall_time_ms,
            self.prefetch_io_ms,
            self.evictions,
            self.stale_refetches,
        )

    def delta_since(self, earlier: "BufferStats") -> "BufferStats":
        return BufferStats(
            self.demand_fetches - earlier.demand_fetches,
            self.demand_hits - earlier.demand_hits,
            self.demand_misses - earlier.demand_misses,
            self.prefetch_issued - earlier.prefetch_issued,
            self.prefetch_used - earlier.prefetch_used,
            self.stall_time_ms - earlier.stall_time_ms,
            self.prefetch_io_ms - earlier.prefetch_io_ms,
            self.evictions - earlier.evictions,
            self.stale_refetches - earlier.stale_refetches,
        )


@dataclass
class _Frame:
    page: Page
    prefetched: bool  # brought in by a prefetch and not yet demanded
    version: int = 0  # disk write-version the frame was read at


class BufferPool:
    """A fixed-capacity LRU cache of pages.

    ``capacity`` is in pages.  ``fetch`` is the demand path; ``prefetch`` the
    speculative path.  Prefetched frames are flagged until first demanded so
    prefetch accuracy can be computed exactly.
    """

    def __init__(self, disk: Disk, capacity: int = 256) -> None:
        if capacity < 1:
            raise StorageError("buffer pool capacity must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    # -- demand path -------------------------------------------------------
    def fetch(self, page_id: int) -> Page:
        """Fetch a page on the critical path; misses add stall time.

        A resident frame only counts as a hit while its write-version still
        matches the disk's: index maintenance that rewrites a page in place
        (FLAT inserts/deletes/moves) silently invalidates every pool frame
        holding the old snapshot, so readers can never observe pre-mutation
        page contents through a warm pool.
        """
        self.stats.demand_fetches += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            if frame.version == self.disk.version_of(page_id):
                self._frames.move_to_end(page_id)
                self.stats.demand_hits += 1
                self.stats.stall_time_ms += self.disk.params.hit_latency_ms
                if frame.prefetched:
                    frame.prefetched = False
                    self.stats.prefetch_used += 1
                return frame.page
            # Stale frame: the page was rewritten after we cached it.
            del self._frames[page_id]
            self.stats.stale_refetches += 1
        self.stats.demand_misses += 1
        page, latency = self.disk.read(page_id)
        self.stats.stall_time_ms += latency
        self._admit(
            page_id,
            _Frame(page, prefetched=False, version=self.disk.version_of(page_id)),
        )
        return page

    # -- speculative path ----------------------------------------------------
    def prefetch(self, page_id: int) -> bool:
        """Bring a page in off the critical path.

        Returns ``True`` if a disk read was issued, ``False`` if the page was
        already resident (prefetching something cached is free and not
        counted as an issued prefetch).  A stale resident frame (the page
        was rewritten since it was cached) is refreshed like a miss.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            if frame.version == self.disk.version_of(page_id):
                return False
            del self._frames[page_id]
            self.stats.stale_refetches += 1
        page, latency = self.disk.read(page_id)
        self.stats.prefetch_issued += 1
        self.stats.prefetch_io_ms += latency
        self._admit(
            page_id,
            _Frame(page, prefetched=True, version=self.disk.version_of(page_id)),
        )
        return True

    # -- management ---------------------------------------------------------
    def _admit(self, page_id: int, frame: _Frame) -> None:
        if len(self._frames) >= self.capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        self._frames[page_id] = frame

    def invalidate(self, page_id: int) -> bool:
        """Drop one frame, if resident (eager form of the version check)."""
        return self._frames.pop(page_id, None) is not None

    def resident(self, page_id: int) -> bool:
        return page_id in self._frames

    def resident_page_ids(self) -> list[int]:
        return list(self._frames)

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    def clear(self) -> None:
        """Drop all frames (cold-cache experiments); stats are preserved."""
        self._frames.clear()

    def reset(self) -> None:
        """Drop frames and zero the counters (fresh experiment)."""
        self._frames.clear()
        self.stats = BufferStats()
