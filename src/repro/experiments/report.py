"""One-shot report generator: every experiment, one document.

``generate_report`` runs the full experiment suite (E1-E8, the ablations
and the headline claims) and assembles a single plain-text report — the
programmatic counterpart of EXPERIMENTS.md, regenerated on the current
machine.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from typing import Callable

from repro.utils.timers import Stopwatch

__all__ = ["generate_report"]

_RULE = "=" * 72


def generate_report(quick: bool = True, progress: Callable[[str], None] | None = None) -> str:
    """Run everything and return the assembled report text.

    ``quick`` shrinks workloads (suitable for CI); ``progress`` receives a
    line per section as it completes (the CLI prints them).
    """
    from repro.experiments.ablations import (
        a1_flat_verification,
        a2_flat_page_capacity,
        a3_scout_content_awareness,
        a4_scout_pruning,
        a5_touch_filtering,
        a6_touch_fanout,
        a7_flat_incremental_maintenance,
        a8_touch_eps_sensitivity,
    )
    from repro.experiments.claims import headline_claims
    from repro.experiments.fig_flat import (
        crawl_trace_experiment,
        density_sweep_experiment,
        flat_vs_rtree_experiment,
        tissue_statistics_experiment,
    )
    from repro.experiments.fig_scout import pruning_experiment, walkthrough_experiment
    from repro.experiments.fig_touch import (
        join_comparison_experiment,
        join_scaling_experiment,
    )

    sections: list[tuple[str, Callable[[], str]]] = [
        (
            "E1 FLAT vs R-tree (dense)",
            lambda: flat_vs_rtree_experiment(
                region="dense", num_queries=4 if quick else 12
            ).render(),
        ),
        (
            "E1 FLAT vs R-tree (sparse)",
            lambda: flat_vs_rtree_experiment(
                region="sparse", num_queries=4 if quick else 12
            ).render(),
        ),
        (
            "E2 density sweep",
            lambda: density_sweep_experiment(
                density_factors=(1, 2, 4) if quick else (1, 2, 4, 8)
            ).render(),
        ),
        ("E3 crawl trace", lambda: crawl_trace_experiment().render()),
        ("E4 candidate pruning", lambda: pruning_experiment().render()),
        (
            "E5 walkthrough prefetching",
            lambda: walkthrough_experiment(num_walks=2 if quick else 3).render(),
        ),
        (
            "E6 join comparison",
            lambda: join_comparison_experiment(n_per_side=1000 if quick else 2500).render(),
        ),
        (
            "E7 join scaling",
            lambda: join_scaling_experiment(
                sizes=(500, 1000) if quick else (1000, 2000, 4000),
                nested_loop_max=1000 if quick else 2000,
            ).render(),
        ),
        ("E8 tissue statistics", lambda: tissue_statistics_experiment().render()),
        ("A1 FLAT verification", lambda: a1_flat_verification().render()),
        ("A2 FLAT page capacity", lambda: a2_flat_page_capacity().render()),
        ("A3 SCOUT smoothing", lambda: a3_scout_content_awareness().render()),
        ("A4 SCOUT pruning", lambda: a4_scout_pruning().render()),
        ("A5 TOUCH filtering", lambda: a5_touch_filtering().render()),
        ("A6 TOUCH fanout", lambda: a6_touch_fanout().render()),
        ("A7 FLAT maintenance", lambda: a7_flat_incremental_maintenance().render()),
        ("A8 TOUCH tolerance", lambda: a8_touch_eps_sensitivity().render()),
        ("Headline claims", lambda: headline_claims(quick=quick).render()),
    ]

    stopwatch = Stopwatch()
    chunks = [
        "repro experiment report",
        f"mode: {'quick' if quick else 'full'}",
        _RULE,
    ]
    with stopwatch:
        for title, run in sections:
            text = run()
            chunks.append(f"\n### {title}\n")
            chunks.append(text)
            chunks.append("\n" + _RULE)
            if progress is not None:
                progress(f"done: {title}")
    chunks.append(f"\ntotal wall time: {stopwatch.elapsed:.1f} s")
    return "\n".join(chunks)
