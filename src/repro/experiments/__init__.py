"""Experiment harness: one function per paper figure / headline claim.

Every experiment returns a small dataclass with the series the demo screens
displayed and offers ``render()`` for the text table; benchmarks and
examples call these functions so the numbers in EXPERIMENTS.md, the benches
and the examples always come from the same code path.
"""

from repro.experiments.datasets import circuit_dataset, flat_index_for
from repro.experiments.fig_flat import (
    crawl_trace_experiment,
    density_sweep_experiment,
    flat_vs_rtree_experiment,
    tissue_statistics_experiment,
)
from repro.experiments.fig_scout import (
    pruning_experiment,
    walkthrough_experiment,
)
from repro.experiments.fig_touch import join_comparison_experiment, join_scaling_experiment
from repro.experiments.claims import headline_claims

__all__ = [
    "circuit_dataset",
    "crawl_trace_experiment",
    "density_sweep_experiment",
    "flat_index_for",
    "flat_vs_rtree_experiment",
    "headline_claims",
    "join_comparison_experiment",
    "join_scaling_experiment",
    "pruning_experiment",
    "tissue_statistics_experiment",
    "walkthrough_experiment",
]
