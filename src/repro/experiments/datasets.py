"""Shared, cached experiment datasets.

Circuits and indexes are expensive to build; experiments and benchmarks
share them through these memoised constructors.  Cache keys are the full
parameter tuples, so differently configured experiments never collide.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.flat.index import FLATIndex
from repro.geometry.segment import Segment
from repro.neuro.circuit import Circuit, CircuitConfig, generate_circuit
from repro.rtree.bulk import str_bulk_load
from repro.rtree.tree import RTree
from repro.utils.rng import derive_seed, make_rng

__all__ = [
    "circuit_dataset",
    "dense_join_workload",
    "flat_index_for",
    "rtree_baseline_for",
    "DEFAULT_SEED",
]

DEFAULT_SEED = 2013  # the paper's year; fixed so all docs show the same numbers


@lru_cache(maxsize=16)
def circuit_dataset(
    n_neurons: int = 40,
    seed: int = DEFAULT_SEED,
    column_radius: float = 220.0,
    column_height: float = 1100.0,
) -> Circuit:
    """A memoised circuit (see :class:`repro.neuro.CircuitConfig`)."""
    config = CircuitConfig(
        n_neurons=n_neurons,
        seed=seed,
        column_radius=column_radius,
        column_height=column_height,
    )
    return generate_circuit(config)


@lru_cache(maxsize=16)
def rtree_baseline_for(
    n_neurons: int = 40,
    seed: int = DEFAULT_SEED,
    page_capacity: int = 48,
    internal_fanout: int = 16,
    method: str = "insert",
    column_radius: float = 220.0,
    column_height: float = 1100.0,
) -> RTree:
    """The baseline R-tree of the demo over the matching cached circuit.

    ``method="insert"`` builds the tree dynamically in dataset order — the
    realistic model-building pipeline (neurons are added incrementally) and
    the regime where overlap degrades range queries.  ``method="str"`` bulk
    loads instead (ablation: a statically repacked tree is close to FLAT's
    partitioning, isolating the contribution of the crawl vs the packing).
    """
    circuit = circuit_dataset(
        n_neurons=n_neurons,
        seed=seed,
        column_radius=column_radius,
        column_height=column_height,
    )
    items = [(s.uid, s.aabb) for s in circuit.segments()]
    if method == "str":
        return str_bulk_load(items, max_entries=internal_fanout, leaf_capacity=page_capacity)
    if method != "insert":
        raise ValueError(f"unknown R-tree build method {method!r}")
    tree = RTree(max_entries=internal_fanout, leaf_capacity=page_capacity)
    for uid, mbr in items:
        tree.insert(uid, mbr)
    return tree


@lru_cache(maxsize=8)
def dense_join_workload(
    n_per_side: int,
    seed: int = DEFAULT_SEED,
    n_neurons: int = 300,
    column_radius: float = 110.0,
    column_height: float = 450.0,
) -> tuple[tuple[Segment, ...], tuple[Segment, ...]]:
    """Axon/dendrite samples from a *dense* microcircuit (E6/E7 input).

    The paper's join runs on tissue where every unit of volume contains
    interleaved branches of many neurons.  Taking whole neurons in gid
    order would instead yield spatially separated morphologies, so the
    samples here are random draws over the full dense column.
    """
    circuit = circuit_dataset(
        n_neurons=n_neurons,
        seed=seed,
        column_radius=column_radius,
        column_height=column_height,
    )
    axons = circuit.axon_segments()
    dendrites = circuit.dendrite_segments()
    rng = make_rng(derive_seed(seed, "join-sample", n_per_side))
    pick_a = rng.permutation(len(axons))[:n_per_side]
    pick_b = rng.permutation(len(dendrites))[:n_per_side]
    return (
        tuple(axons[i] for i in pick_a),
        tuple(dendrites[i] for i in pick_b),
    )


@lru_cache(maxsize=16)
def flat_index_for(
    n_neurons: int = 40,
    seed: int = DEFAULT_SEED,
    page_capacity: int = 48,
    column_radius: float = 220.0,
    column_height: float = 1100.0,
) -> FLATIndex:
    """A memoised FLAT index over the matching cached circuit."""
    circuit = circuit_dataset(
        n_neurons=n_neurons,
        seed=seed,
        column_radius=column_radius,
        column_height=column_height,
    )
    return FLATIndex(circuit.segments(), page_capacity=page_capacity)
