"""SCOUT experiments: E4 (Figure 5, candidate pruning) and E5 (Figure 6).

E5 replays the same walkthroughs under every prefetching policy (cold cache
each time) and reports the Figure 6 counters: total prefetched, correctly
prefetched, additionally retrieved, stall latency, and the speedup over the
no-prefetch baseline ("speeding up query sequences by a factor of up to
15x", §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.flat.index import FLATIndex
from repro.core.scout.baselines import (
    ExtrapolationPrefetcher,
    HilbertPrefetcher,
    MarkovPrefetcher,
    NoPrefetcher,
)
from repro.core.scout.metrics import SessionMetrics
from repro.core.scout.prefetcher import ScoutPrefetcher
from repro.core.scout.session import ExplorationSession
from repro.experiments.datasets import DEFAULT_SEED, circuit_dataset, flat_index_for
from repro.storage.buffer_pool import BufferPool
from repro.utils.rng import derive_seed
from repro.utils.tables import Table
from repro.workloads.walks import BranchWalk, branch_walk

__all__ = [
    "PruningResult",
    "pruning_experiment",
    "WalkthroughResult",
    "walkthrough_experiment",
    "default_prefetcher_factories",
]

#: Experiment defaults: small pages + wide windows => several pages per
#: step, so prefetching has something to win (mirrors the demo datasets,
#: where a window covers many mesh pages).
SCOUT_PAGE_CAPACITY = 12
SCOUT_WINDOW_EXTENT = 90.0


@dataclass
class PruningResult:
    """E4: the candidate-set size after each query of a walkthrough."""

    candidate_history: list[int]
    followed_branch: int
    converged_at: int | None  # first step with exactly one candidate

    def render(self) -> str:
        series = ", ".join(str(c) for c in self.candidate_history)
        when = self.converged_at if self.converged_at is not None else "never"
        return (
            "E4 candidate pruning (Figure 5)\n"
            f"candidates per step: {series}\n"
            f"converged to a single structure at step: {when}"
        )


def pruning_experiment(
    n_neurons: int = 40,
    window_extent: float = SCOUT_WINDOW_EXTENT,
    page_capacity: int = SCOUT_PAGE_CAPACITY,
    seed: int = DEFAULT_SEED,
    walk_seed: int = 11,
    min_steps: int = 14,
) -> PruningResult:
    """Run one walkthrough with SCOUT and record the pruning series."""
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
    walk = branch_walk(
        circuit, window_extent=window_extent, seed=walk_seed, min_steps=min_steps
    )
    pool = BufferPool(index.disk, capacity=256)
    prefetcher = ScoutPrefetcher(index, pool)
    ExplorationSession(index, pool, prefetcher).run(walk.queries)
    history = list(prefetcher.tracker.history)
    converged = next((i for i, c in enumerate(history) if c == 1), None)
    return PruningResult(
        candidate_history=history,
        followed_branch=walk.followed_branch,
        converged_at=converged,
    )


PrefetcherFactory = Callable[[FLATIndex, BufferPool], object]


def default_prefetcher_factories(
    budget_pages: int = 24,
    markov_training: Sequence[BranchWalk] = (),
) -> dict[str, PrefetcherFactory]:
    """The demo's selectable prefetching methods (§3.2)."""

    def make_markov(index: FLATIndex, pool: BufferPool) -> MarkovPrefetcher:
        prefetcher = MarkovPrefetcher(index, pool, budget_pages=budget_pages)
        prefetcher.train([walk.path for walk in markov_training])
        return prefetcher

    return {
        "none": lambda index, pool: NoPrefetcher(),
        "hilbert": lambda index, pool: HilbertPrefetcher(index, pool, budget_pages=budget_pages),
        "extrapolation": lambda index, pool: ExtrapolationPrefetcher(
            index, pool, budget_pages=budget_pages
        ),
        "markov": make_markov,
        "SCOUT": lambda index, pool: ScoutPrefetcher(index, pool, budget_pages=budget_pages),
    }


@dataclass
class WalkthroughRow:
    method: str
    total_stall_ms: float
    mean_stall_ms: float
    demand_misses: int
    prefetched: int
    prefetch_used: int
    accuracy: float
    speedup: float
    best_speedup: float  # best single walk ("up to ...x", paper 3.1)
    steady_speedup: float  # excluding each walk's cold first window


@dataclass
class WalkthroughResult:
    """E5: Figure 6 counters per prefetching method, summed over walks."""

    num_walks: int
    num_steps: int
    rows: list[WalkthroughRow]

    def render(self) -> str:
        table = Table(
            [
                "method",
                "stall ms",
                "ms/step",
                "missed",
                "prefetched",
                "correct",
                "accuracy",
                "speedup",
                "best walk",
                "steady state",
            ],
            title=f"E5 walkthrough prefetching ({self.num_walks} walks, "
            f"{self.num_steps} steps total)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.method,
                    row.total_stall_ms,
                    row.mean_stall_ms,
                    row.demand_misses,
                    row.prefetched,
                    row.prefetch_used,
                    row.accuracy,
                    f"{row.speedup:.1f}x",
                    f"{row.best_speedup:.1f}x",
                    f"{row.steady_speedup:.1f}x",
                ]
            )
        return table.render()

    def row(self, method: str) -> WalkthroughRow:
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(method)


def walkthrough_experiment(
    n_neurons: int = 40,
    window_extent: float = SCOUT_WINDOW_EXTENT,
    page_capacity: int = SCOUT_PAGE_CAPACITY,
    num_walks: int = 3,
    budget_pages: int = 24,
    pool_capacity: int = 384,
    seed: int = DEFAULT_SEED,
    methods: Sequence[str] | None = None,
    min_steps: int = 14,
) -> WalkthroughResult:
    """Run E5: every method over the same walks, cold cache per walk.

    The Markov baseline is trained on *different* walks (other "users"), so
    the experiment reproduces the paper's point that learned paths rarely
    transfer at this scale.
    """
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)

    walks = [
        branch_walk(
            circuit,
            window_extent=window_extent,
            seed=derive_seed(seed, "walk", i),
            min_steps=min_steps,
        )
        for i in range(num_walks)
    ]
    training = [
        branch_walk(
            circuit,
            window_extent=window_extent,
            seed=derive_seed(seed, "train", i),
            min_steps=min_steps,
        )
        for i in range(num_walks)
    ]
    factories = default_prefetcher_factories(
        budget_pages=budget_pages, markov_training=training
    )
    if methods is not None:
        factories = {name: factories[name] for name in methods}

    aggregated: dict[str, list[SessionMetrics]] = {name: [] for name in factories}
    for name, factory in factories.items():
        for walk in walks:
            pool = BufferPool(index.disk, capacity=pool_capacity)
            prefetcher = factory(index, pool)
            session = ExplorationSession(index, pool, prefetcher)
            aggregated[name].append(session.run(walk.queries, cold_cache=True))

    def total(metrics: list[SessionMetrics], attr: str) -> float:
        return sum(getattr(m, attr) for m in metrics)

    baseline = aggregated.get("none")
    baseline_stall = total(baseline, "total_stall_ms") if baseline else None
    rows = []
    total_steps = sum(len(w.queries) for w in walks)
    for name, metrics in aggregated.items():
        stall = total(metrics, "total_stall_ms")
        prefetched = int(total(metrics, "total_prefetched"))
        used = int(total(metrics, "prefetch_used"))
        if baseline is not None:
            per_walk = [
                b.total_stall_ms / m.total_stall_ms
                for b, m in zip(baseline, metrics)
                if m.total_stall_ms > 0
            ]
            best = max(per_walk, default=1.0)
            baseline_steady = sum(b.steady_state_stall_ms for b in baseline)
            steady = sum(m.steady_state_stall_ms for m in metrics)
            steady_speedup = (baseline_steady / steady) if steady > 0 else float("inf")
        else:
            best = 1.0
            steady_speedup = 1.0
        rows.append(
            WalkthroughRow(
                method=name,
                total_stall_ms=stall,
                mean_stall_ms=stall / total_steps,
                demand_misses=int(total(metrics, "demand_misses")),
                prefetched=prefetched,
                prefetch_used=used,
                accuracy=(used / prefetched) if prefetched else 0.0,
                speedup=(baseline_stall / stall) if baseline_stall and stall > 0 else 1.0,
                best_speedup=best,
                steady_speedup=steady_speedup,
            )
        )
    return WalkthroughResult(num_walks=num_walks, num_steps=total_steps, rows=rows)
