"""Headline-claim verification: the quantitative statements of the paper.

The demo paper inherits its numbers from the underlying systems papers; the
statements it prints are:

* C1 (§2.1) — FLAT's range-query cost is (approximately) independent of data
  density, while the R-tree's grows with density.
* C2 (§3.1) — SCOUT speeds up query sequences "by a factor of up to 15x"
  and beats Hilbert/extrapolation prefetching.
* C3/C4 (§4.1) — TOUCH is about an order of magnitude faster than PBSM and
  about two orders faster than the small-memory competitors (S3, sweep).
* C5 (§4.1) — TOUCH's memory footprint stays comparable to the small-
  footprint competitors (no replication).

``headline_claims`` measures all of them on the default datasets and
reports measured value + the qualitative expectation.  "Holds" means the
*shape* holds — who wins, and that the gap grows in the direction the paper
reports.  Absolute factors depend on scale: the paper's 1-2 orders of
magnitude for the join were measured on 100M-500M-element BlueGene datasets;
at laptop scale the reproduced gaps are smaller but widen monotonically with
dataset size (see EXPERIMENTS.md for the extrapolation discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernels
from repro.experiments.fig_flat import density_sweep_experiment
from repro.experiments.fig_scout import walkthrough_experiment
from repro.experiments.fig_touch import join_scaling_experiment
from repro.utils.tables import Table

__all__ = ["Claim", "ClaimsReport", "headline_claims"]


@dataclass(frozen=True)
class Claim:
    claim_id: str
    statement: str
    expectation: str
    measured: str
    holds: bool


@dataclass
class ClaimsReport:
    claims: list[Claim]

    def render(self) -> str:
        table = Table(["id", "expectation", "measured", "holds"], title="Headline claims")
        for claim in self.claims:
            table.add_row([claim.claim_id, claim.expectation, claim.measured, claim.holds])
        lines = [table.render(), ""]
        for claim in self.claims:
            lines.append(f"{claim.claim_id}: {claim.statement}")
        return "\n".join(lines)

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.claims)


def headline_claims(quick: bool = True) -> ClaimsReport:
    """Measure every headline claim; ``quick`` shrinks the workloads."""
    claims: list[Claim] = []

    # -- C1: density independence ------------------------------------------
    sweep = density_sweep_experiment(
        density_factors=(1, 4, 8) if quick else (1, 2, 4, 8),
        num_queries=6 if quick else 12,
    )
    flat_growth = sweep.flat_growth()
    rtree_growth = sweep.rtree_growth()
    claims.append(
        Claim(
            claim_id="C1",
            statement=(
                "FLAT range-query cost is independent of density; "
                "tree-based indexes degrade (paper 2.1)"
            ),
            expectation="FLAT growth ~1x, R-tree growth substantially larger",
            measured=f"FLAT {flat_growth:.2f}x vs R-tree {rtree_growth:.2f}x",
            holds=flat_growth < 1.25 and rtree_growth > flat_growth * 1.2,
        )
    )

    # -- C2: SCOUT speedup ----------------------------------------------------
    walkthrough = walkthrough_experiment(num_walks=2 if quick else 4)
    scout = walkthrough.row("SCOUT")
    hilbert = walkthrough.row("hilbert")
    extrapolation = walkthrough.row("extrapolation")
    claims.append(
        Claim(
            claim_id="C2",
            statement="SCOUT speeds up query sequences by up to 15x (paper 3.1)",
            expectation="speedup >> 1x and above Hilbert and extrapolation",
            measured=(
                f"SCOUT {scout.speedup:.1f}x (steady state {scout.steady_speedup:.1f}x, "
                f"best walk {scout.best_speedup:.1f}x), "
                f"hilbert {hilbert.speedup:.1f}x, "
                f"extrapolation {extrapolation.speedup:.1f}x"
            ),
            holds=(
                scout.speedup >= 2.5
                and scout.steady_speedup >= 8.0
                and scout.speedup > hilbert.speedup
                and scout.speedup > extrapolation.speedup
            ),
        )
    )

    # -- C3/C4/C5: TOUCH vs competitors -------------------------------------
    # The paper compares the *algorithms*, so every competitor runs on the
    # scalar reference kernels here: the vectorised backend accelerates the
    # grid/sweep filter phases more than TOUCH's pointer-chasing assignment
    # and would skew the wall-clock ratios the claims quote.  Comparison and
    # memory counts are backend-independent either way.
    sizes = (1000, 2000) if quick else (1000, 2000, 4000, 8000)
    with kernels.use_backend("python"):
        scaling = join_scaling_experiment(sizes=sizes, nested_loop_max=2000)
    largest = max(r.n_per_side for r in scaling.rows)

    def row_of(algorithm: str, n: int):
        return next(
            r for r in scaling.rows if r.algorithm == algorithm and r.n_per_side == n
        )

    touch = row_of("TOUCH", largest)
    pbsm = row_of("PBSM", largest)
    s3 = row_of("S3", largest)
    sweep_join = row_of("plane-sweep", largest)
    nested_n = min(largest, 2000)

    pbsm_cmp_ratio = pbsm.comparisons / max(touch.comparisons, 1)
    claims.append(
        Claim(
            claim_id="C3",
            statement="TOUCH is one order of magnitude faster than PBSM (paper 4.1)",
            expectation="PBSM slower and needing several times more comparisons",
            measured=(
                f"PBSM {pbsm.slowdown_vs_touch:.1f}x time, "
                f"{pbsm_cmp_ratio:.1f}x comparisons at n={largest}"
            ),
            holds=pbsm.slowdown_vs_touch > 1.5 and pbsm_cmp_ratio > 2.0,
        )
    )
    sweep_small = row_of("plane-sweep", sizes[0]).slowdown_vs_touch
    nested_ratio = row_of("nested-loop", nested_n).slowdown_vs_touch
    claims.append(
        Claim(
            claim_id="C4",
            statement=(
                "TOUCH is two orders of magnitude faster than approaches with an "
                "equally small memory footprint (S3, sweep) (paper 4.1)"
            ),
            expectation="S3/sweep slower with the gap widening; nested-loop >> 10x",
            measured=(
                f"S3 {s3.slowdown_vs_touch:.1f}x, sweep {sweep_join.slowdown_vs_touch:.1f}x "
                f"(was {sweep_small:.1f}x at n={sizes[0]}), "
                f"nested-loop {nested_ratio:.1f}x at n={nested_n}"
            ),
            holds=(
                s3.slowdown_vs_touch > 1.5
                and sweep_join.slowdown_vs_touch >= sweep_small
                and nested_ratio > 10.0
            ),
        )
    )
    claims.append(
        Claim(
            claim_id="C5",
            statement="TOUCH avoids replication, keeping the memory footprint small (paper 4.1)",
            expectation="TOUCH stores no replicas; footprint far below S3's double index",
            measured=(
                f"TOUCH {touch.memory_bytes:,} B vs PBSM {pbsm.memory_bytes:,} B "
                f"(+replicas) vs S3 {s3.memory_bytes:,} B"
            ),
            holds=touch.memory_bytes <= pbsm.memory_bytes * 2
            and touch.memory_bytes < s3.memory_bytes,
        )
    )
    return ClaimsReport(claims=claims)
