"""FLAT experiments: E1 (Fig 2/3), E2 (density claim), E3 (Fig 4), E8 (stats).

The demo compares FLAT and the R-tree live: both execute the same audience-
chosen window, and the screens show time, disk pages retrieved and — for the
R-tree — nodes retrieved per level.  These experiments script that loop.

Cost accounting
---------------
Every page access costs one ``read_latency``, for both systems alike: FLAT
pays its seed-tree node visits plus the partitions it crawls, the R-tree
pays its internal plus leaf node visits (one node per page, the textbook
layout).  FLAT runs in its original single-seed mode here (``verify=False``
— the exactness verification pass is this reproduction's addition; ablation
A1 measures its cost, and every experiment asserts the results still match
the R-tree's exactly).  The R-tree baseline is built by insertion in dataset
order — the incremental model-building pipeline the demo targets and the
regime where MBR overlap degrades range queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Sequence

from repro.experiments.datasets import (
    DEFAULT_SEED,
    circuit_dataset,
    flat_index_for,
    rtree_baseline_for,
)
from repro.storage.disk import DiskParameters
from repro.utils.tables import Table
from repro.utils.timers import time_call
from repro.workloads.ranges import density_stratified_queries, grid_queries

__all__ = [
    "FlatVsRTreeResult",
    "flat_vs_rtree_experiment",
    "DensitySweepResult",
    "density_sweep_experiment",
    "CrawlTraceResult",
    "crawl_trace_experiment",
    "TissueStatisticsResult",
    "tissue_statistics_experiment",
]


def _io_ms(data_pages: float, directory_visits: float, params: DiskParameters) -> float:
    """Uniform model: every page access (data or directory) is a disk read."""
    return (data_pages + directory_visits) * params.read_latency_ms


@dataclass
class MethodSummary:
    """Per-method averages over a query workload."""

    method: str
    mean_data_pages: float
    mean_directory_visits: float
    mean_io_ms: float
    mean_wall_ms: float
    mean_results: float
    nodes_per_level: dict[int, float] = field(default_factory=dict)


@dataclass
class FlatVsRTreeResult:
    """E1: FLAT vs R-tree on dense or sparse regions (Figures 2 and 3)."""

    region: str
    num_queries: int
    extent: float
    flat: MethodSummary
    rtree: MethodSummary

    def render(self) -> str:
        table = Table(
            [
                "method",
                "data pages/q",
                "dir visits/q",
                "io ms/q",
                "wall ms/q",
                "results/q",
            ],
            title=f"E1 FLAT vs R-tree - {self.region} region "
            f"({self.num_queries} queries, extent {self.extent:g} um)",
        )
        for summary in (self.flat, self.rtree):
            table.add_row(
                [
                    summary.method,
                    summary.mean_data_pages,
                    summary.mean_directory_visits,
                    summary.mean_io_ms,
                    summary.mean_wall_ms,
                    summary.mean_results,
                ]
            )
        lines = [table.render()]
        levels = ", ".join(
            f"L{level}: {count:.1f}"
            for level, count in sorted(self.rtree.nodes_per_level.items(), reverse=True)
        )
        lines.append(f"R-tree nodes/level per query: {levels}")
        return "\n".join(lines)


def flat_vs_rtree_experiment(
    region: str = "dense",
    n_neurons: int = 40,
    page_capacity: int = 48,
    extent: float = 80.0,
    num_queries: int = 12,
    seed: int = DEFAULT_SEED,
    rtree_method: str = "insert",
) -> FlatVsRTreeResult:
    """Run the E1 comparison on density-stratified windows.

    ``region`` is ``"dense"`` or ``"sparse"`` — the two behaviours the
    audience probes in the demo.  ``rtree_method="str"`` swaps in a bulk-
    loaded baseline (ablation: static repacking closes most of the R-tree's
    gap, isolating overlap as the cause of its degradation).
    """
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
    rtree = rtree_baseline_for(
        n_neurons=n_neurons, seed=seed, page_capacity=page_capacity, method=rtree_method
    )
    params = DiskParameters()

    queries = density_stratified_queries(
        circuit.segments(), num_queries, extent, dense=(region == "dense"), seed=seed
    )

    flat_data, flat_dir, flat_wall, flat_results = [], [], [], []
    rt_data, rt_dir, rt_wall, rt_results = [], [], [], []
    level_acc: dict[int, int] = {}
    for box in queries:
        result, elapsed = time_call(index.query, box, verify=False)
        flat_data.append(result.stats.partitions_fetched)
        flat_dir.append(result.stats.seed_nodes_visited)
        flat_wall.append(elapsed * 1000.0)
        flat_results.append(result.stats.num_results)

        (uids, stats), elapsed = time_call(rtree.range_query_with_stats, box)
        rt_data.append(stats.leaf_nodes_visited)
        rt_dir.append(stats.internal_nodes_visited)
        rt_wall.append(elapsed * 1000.0)
        rt_results.append(len(uids))
        for level, count in stats.nodes_per_level.items():
            level_acc[level] = level_acc.get(level, 0) + count
        if sorted(uids) != sorted(result.uids):
            raise AssertionError("FLAT and R-tree disagree on a range query")

    return FlatVsRTreeResult(
        region=region,
        num_queries=len(queries),
        extent=extent,
        flat=MethodSummary(
            method="FLAT",
            mean_data_pages=mean(flat_data),
            mean_directory_visits=mean(flat_dir),
            mean_io_ms=_io_ms(mean(flat_data), mean(flat_dir), params),
            mean_wall_ms=mean(flat_wall),
            mean_results=mean(flat_results),
        ),
        rtree=MethodSummary(
            method="R-tree",
            mean_data_pages=mean(rt_data),
            mean_directory_visits=mean(rt_dir),
            mean_io_ms=_io_ms(mean(rt_data), mean(rt_dir), params),
            mean_wall_ms=mean(rt_wall),
            mean_results=mean(rt_results),
            nodes_per_level={
                level: count / len(queries) for level, count in level_acc.items()
            },
        ),
    )


@dataclass
class DensitySweepRow:
    density_factor: int
    n_neurons: int
    n_segments: int
    extent: float
    mean_results: float
    flat_data_pages: float
    flat_io_ms: float
    rtree_data_pages: float
    rtree_io_ms: float
    rtree_overlap: float


@dataclass
class DensitySweepResult:
    """E2: cost vs density at (approximately) constant result size.

    The window volume shrinks as density grows so the result size stays
    level; FLAT's data-page count should then stay flat while the R-tree's
    page accesses keep climbing with overlap — the §2.1 claim.
    """

    rows: list[DensitySweepRow]

    def render(self) -> str:
        table = Table(
            [
                "density",
                "neurons",
                "segments",
                "results/q",
                "FLAT pages/q",
                "FLAT io ms",
                "R-tree pages/q",
                "R-tree io ms",
                "R-tree overlap",
            ],
            title="E2 density sweep (constant expected result size)",
        )
        for row in self.rows:
            table.add_row(
                [
                    f"x{row.density_factor}",
                    row.n_neurons,
                    row.n_segments,
                    row.mean_results,
                    row.flat_data_pages,
                    row.flat_io_ms,
                    row.rtree_data_pages,
                    row.rtree_io_ms,
                    row.rtree_overlap,
                ]
            )
        return table.render()

    def flat_growth(self) -> float:
        """FLAT I/O at the densest point relative to the sparsest."""
        return self.rows[-1].flat_io_ms / max(self.rows[0].flat_io_ms, 1e-9)

    def rtree_growth(self) -> float:
        return self.rows[-1].rtree_io_ms / max(self.rows[0].rtree_io_ms, 1e-9)


def density_sweep_experiment(
    density_factors: Sequence[int] = (1, 2, 4, 8),
    base_neurons: int = 10,
    base_extent: float = 140.0,
    page_capacity: int = 48,
    num_queries: int = 10,
    seed: int = DEFAULT_SEED,
) -> DensitySweepResult:
    """Run E2: same column, ``base_neurons * factor`` neurons per step."""
    params = DiskParameters()
    rows = []
    for factor in density_factors:
        n_neurons = base_neurons * factor
        circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
        index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
        rtree = rtree_baseline_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
        # Constant expected result size: result count scales with window
        # volume x density, so shrink the volume by the density factor.
        extent = base_extent / factor ** (1.0 / 3.0)
        queries = density_stratified_queries(
            circuit.segments(), num_queries, extent, dense=True, seed=seed
        )
        flat_data, flat_dir, rt_data, rt_dir, results = [], [], [], [], []
        for box in queries:
            flat_result = index.query(box, verify=False)
            flat_data.append(flat_result.stats.partitions_fetched)
            flat_dir.append(flat_result.stats.seed_nodes_visited)
            uids, stats = rtree.range_query_with_stats(box)
            rt_data.append(stats.leaf_nodes_visited)
            rt_dir.append(stats.internal_nodes_visited)
            results.append(len(uids))
        rows.append(
            DensitySweepRow(
                density_factor=factor,
                n_neurons=n_neurons,
                n_segments=circuit.num_segments,
                extent=extent,
                mean_results=mean(results),
                flat_data_pages=mean(flat_data),
                flat_io_ms=_io_ms(mean(flat_data), mean(flat_dir), params),
                rtree_data_pages=mean(rt_data),
                rtree_io_ms=_io_ms(mean(rt_data), mean(rt_dir), params),
                rtree_overlap=rtree.overlap_factor(),
            )
        )
    return DensitySweepResult(rows=rows)


@dataclass
class CrawlTraceResult:
    """E3 (Figure 4): the order in which FLAT loads the query result."""

    crawl_order: list[int]
    contiguous_fraction: float  # visited partitions adjacent to an earlier one
    reseeds: int
    data_pages: int
    num_results: int

    def render(self) -> str:
        head = ", ".join(str(pid) for pid in self.crawl_order[:16])
        more = " ..." if len(self.crawl_order) > 16 else ""
        return (
            "E3 crawl trace (Figure 4)\n"
            f"partitions in visit order: {head}{more}\n"
            f"contiguous fraction: {self.contiguous_fraction:.3f}   "
            f"reseeds: {self.reseeds}   data pages: {self.data_pages}   "
            f"results: {self.num_results}"
        )


def crawl_trace_experiment(
    n_neurons: int = 40,
    page_capacity: int = 48,
    extent: float = 150.0,
    seed: int = DEFAULT_SEED,
) -> CrawlTraceResult:
    """Run one dense window and record FLAT's crawl order."""
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
    box = density_stratified_queries(circuit.segments(), 1, extent, dense=True, seed=seed)[0]
    result = index.query(box)
    order = result.stats.crawl_order
    contiguous = 0
    seen: set[int] = set()
    for position, pid in enumerate(order):
        if position > 0 and any(nb in seen for nb in index.neighbors[pid]):
            contiguous += 1
        seen.add(pid)
    fraction = contiguous / max(len(order) - 1, 1)
    return CrawlTraceResult(
        crawl_order=order,
        contiguous_fraction=fraction,
        reseeds=result.stats.reseeds,
        data_pages=result.stats.partitions_fetched,
        num_results=result.stats.num_results,
    )


@dataclass
class TissueStatisticsResult:
    """E8: tissue-density scan — the statistics use case of §2.1."""

    cells_per_axis: int
    densities: list[float]  # segments per um^3 per grid cell
    flat_total_pages: int
    rtree_total_pages: int

    def render(self) -> str:
        lo, hi = min(self.densities), max(self.densities)
        avg = sum(self.densities) / len(self.densities)
        return (
            "E8 tissue statistics scan\n"
            f"grid: {self.cells_per_axis}^3 windows   "
            f"density (segments/um^3): min {lo:.2e}  mean {avg:.2e}  max {hi:.2e}\n"
            f"total data pages - FLAT: {self.flat_total_pages}   "
            f"R-tree: {self.rtree_total_pages}"
        )


def tissue_statistics_experiment(
    n_neurons: int = 40,
    page_capacity: int = 48,
    cells_per_axis: int = 4,
    seed: int = DEFAULT_SEED,
) -> TissueStatisticsResult:
    """Scan the column with adjacent windows and histogram tissue density."""
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
    rtree = rtree_baseline_for(n_neurons=n_neurons, seed=seed, page_capacity=page_capacity)
    queries = grid_queries(circuit.column_box(), cells_per_axis)

    densities = []
    flat_pages = 0
    rt_pages = 0
    for box in queries:
        result = index.query(box, verify=False)
        flat_pages += result.stats.partitions_fetched
        _, stats = rtree.range_query_with_stats(box)
        rt_pages += stats.leaf_nodes_visited
        densities.append(len(result.uids) / box.volume())
    return TissueStatisticsResult(
        cells_per_axis=cells_per_axis,
        densities=densities,
        flat_total_pages=flat_pages,
        rtree_total_pages=rt_pages,
    )
