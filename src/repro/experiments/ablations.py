"""Ablations A1-A6: the design choices DESIGN.md calls out, isolated.

Each function toggles exactly one mechanism and reports the counters it
moves, using the same datasets as the main experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Sequence

from repro.core.flat.index import FLATIndex
from repro.core.scout.prefetcher import ScoutPrefetcher
from repro.core.scout.session import ExplorationSession
from repro.core.touch.join import touch_join
from repro.experiments.datasets import (
    DEFAULT_SEED,
    circuit_dataset,
    dense_join_workload,
    flat_index_for,
)
from repro.storage.buffer_pool import BufferPool
from repro.utils.rng import derive_seed
from repro.utils.tables import Table
from repro.workloads.ranges import density_stratified_queries
from repro.workloads.walks import branch_walk

__all__ = [
    "a1_flat_verification",
    "a2_flat_page_capacity",
    "a3_scout_content_awareness",
    "a4_scout_pruning",
    "a5_touch_filtering",
    "a6_touch_fanout",
    "a7_flat_incremental_maintenance",
    "a8_touch_eps_sensitivity",
]


@dataclass
class AblationResult:
    """A rendered table plus the raw rows for assertions."""

    name: str
    table: Table
    rows: list[dict]

    def render(self) -> str:
        return self.table.render()


def a1_flat_verification(
    n_neurons: int = 40, num_queries: int = 10, seed: int = DEFAULT_SEED
) -> AblationResult:
    """A1: crawl-only vs crawl+verify — recall and extra seed cost."""
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed)
    segments = circuit.segments()
    queries = density_stratified_queries(segments, num_queries, 120.0, dense=True, seed=seed)

    table = Table(
        ["mode", "recall", "seed nodes/q", "data pages/q", "reseeds total"],
        title="A1 FLAT verification pass",
    )
    rows = []
    for verify in (False, True):
        recalls, seed_nodes, data_pages, reseeds = [], [], [], 0
        for box in queries:
            result = index.query(box, verify=verify)
            expected = {s.uid for s in segments if s.aabb.intersects(box)}
            got = set(result.uids)
            recalls.append(len(got & expected) / max(len(expected), 1))
            seed_nodes.append(result.stats.seed_nodes_visited)
            data_pages.append(result.stats.partitions_fetched)
            reseeds += result.stats.reseeds
        row = {
            "mode": "verify" if verify else "crawl-only",
            "recall": mean(recalls),
            "seed_nodes": mean(seed_nodes),
            "data_pages": mean(data_pages),
            "reseeds": reseeds,
        }
        rows.append(row)
        table.add_row(
            [row["mode"], row["recall"], row["seed_nodes"], row["data_pages"], row["reseeds"]]
        )
    return AblationResult("A1", table, rows)


def a2_flat_page_capacity(
    capacities: Sequence[int] = (12, 24, 48, 96),
    n_neurons: int = 40,
    num_queries: int = 8,
    seed: int = DEFAULT_SEED,
) -> AblationResult:
    """A2: partition size sweep — pages fetched vs objects scanned."""
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    segments = circuit.segments()
    queries = density_stratified_queries(segments, num_queries, 120.0, dense=True, seed=seed)

    table = Table(
        ["page capacity", "partitions", "pages/q", "objects scanned/q", "io ms/q"],
        title="A2 FLAT partition size",
    )
    rows = []
    for capacity in capacities:
        index = FLATIndex(segments, page_capacity=capacity)
        pages, scanned = [], []
        for box in queries:
            result = index.query(box, verify=False)
            pages.append(result.stats.partitions_fetched)
            scanned.append(result.stats.objects_scanned)
        row = {
            "capacity": capacity,
            "partitions": index.num_partitions,
            "pages": mean(pages),
            "scanned": mean(scanned),
            "io_ms": mean(pages) * index.disk.params.read_latency_ms,
        }
        rows.append(row)
        table.add_row(
            [capacity, row["partitions"], row["pages"], row["scanned"], row["io_ms"]]
        )
    return AblationResult("A2", table, rows)


def _run_scout_walks(index, walks, **prefetcher_kwargs):
    stall = misses = issued = used = 0.0
    for walk in walks:
        pool = BufferPool(index.disk, capacity=384)
        prefetcher = ScoutPrefetcher(index, pool, **prefetcher_kwargs)
        metrics = ExplorationSession(index, pool, prefetcher).run(walk.queries)
        stall += metrics.total_stall_ms
        misses += metrics.demand_misses
        issued += metrics.total_prefetched
        used += metrics.prefetch_used
    return {
        "stall_ms": stall,
        "misses": misses,
        "issued": issued,
        "used": used,
        "accuracy": used / issued if issued else 0.0,
    }


def _scout_setup(n_neurons: int, seed: int, num_walks: int = 2):
    circuit = circuit_dataset(n_neurons=n_neurons, seed=seed)
    index = flat_index_for(n_neurons=n_neurons, seed=seed, page_capacity=12)
    walks = [
        branch_walk(circuit, window_extent=90.0, seed=derive_seed(seed, "walk", i), min_steps=14)
        for i in range(num_walks)
    ]
    return index, walks


def a3_scout_content_awareness(
    n_neurons: int = 40, seed: int = DEFAULT_SEED
) -> AblationResult:
    """A3: skeleton smoothing on vs off (single-edge extrapolation)."""
    index, walks = _scout_setup(n_neurons, seed)
    table = Table(
        ["mode", "stall ms", "missed", "issued", "accuracy"],
        title="A3 SCOUT direction smoothing (content awareness)",
    )
    rows = []
    for label, smooth in (("smoothed (k=4)", 4), ("single edge (k=1)", 1)):
        result = _run_scout_walks(index, walks, smooth_steps=smooth)
        result["mode"] = label
        rows.append(result)
        table.add_row(
            [label, result["stall_ms"], result["misses"], result["issued"], result["accuracy"]]
        )
    return AblationResult("A3", table, rows)


def a4_scout_pruning(n_neurons: int = 40, seed: int = DEFAULT_SEED) -> AblationResult:
    """A4: candidate pruning on vs off — accuracy and wasted prefetches."""
    index, walks = _scout_setup(n_neurons, seed)
    table = Table(
        ["mode", "stall ms", "missed", "issued", "used", "accuracy"],
        title="A4 SCOUT candidate pruning",
    )
    rows = []
    for label, prune in (("pruning on", True), ("pruning off", False)):
        result = _run_scout_walks(index, walks, prune=prune)
        result["mode"] = label
        rows.append(result)
        table.add_row(
            [
                label,
                result["stall_ms"],
                result["misses"],
                result["issued"],
                result["used"],
                result["accuracy"],
            ]
        )
    return AblationResult("A4", table, rows)


def a5_touch_filtering(
    n_per_side: int = 2000, eps: float = 3.0, seed: int = DEFAULT_SEED
) -> AblationResult:
    """A5: empty-space filtering on vs off — comparisons moved."""
    objects_a, objects_b = dense_join_workload(n_per_side, seed=seed)
    table = Table(
        ["mode", "comparisons", "filtered", "pairs", "total ms"],
        title="A5 TOUCH empty-space filtering",
    )
    rows = []
    for label, filtering in (("filtering on", True), ("filtering off", False)):
        result = touch_join(objects_a, objects_b, eps=eps, filtering=filtering)
        row = {
            "mode": label,
            "comparisons": result.stats.comparisons,
            "filtered": result.stats.filtered,
            "pairs": len(result.pairs),
            "total_ms": result.stats.total_ms,
        }
        rows.append(row)
        table.add_row(
            [label, row["comparisons"], row["filtered"], row["pairs"], row["total_ms"]]
        )
    if rows[0]["pairs"] != rows[1]["pairs"]:
        raise AssertionError("filtering must not change join results")
    return AblationResult("A5", table, rows)


def a7_flat_incremental_maintenance(
    n_neurons: int = 30,
    added_neurons: int = 4,
    num_queries: int = 6,
    seed: int = DEFAULT_SEED,
) -> AblationResult:
    """A7: grow the model incrementally vs rebuilding FLAT from scratch.

    The paper's motivation is *model building*: neurons are added to the
    circuit between analyses.  This ablation adds ``added_neurons`` to an
    indexed circuit either through :meth:`FLATIndex.insert` (local
    maintenance) or by rebuilding the index, and compares build effort and
    resulting query cost.
    """
    from repro.neuro.circuit import generate_circuit
    from repro.utils.timers import Stopwatch

    base = circuit_dataset(n_neurons=n_neurons, seed=seed)
    grown = generate_circuit(
        n_neurons=n_neurons + added_neurons,
        seed=seed,
        column_radius=base.config.column_radius,
        column_height=base.config.column_height,
    )
    # The grown circuit regenerates all segments with fresh uids; the last
    # neurons' segments are "the update batch".
    new_segments = [
        s for s in grown.segments() if s.neuron_id >= n_neurons
    ]
    shared_segments = [s for s in grown.segments() if s.neuron_id < n_neurons]

    table = Table(
        ["strategy", "maintenance ms", "partitions", "pages/query", "recall"],
        title=f"A7 FLAT incremental maintenance (+{added_neurons} neurons, "
        f"{len(new_segments)} segments)",
    )
    queries = density_stratified_queries(
        grown.segments(), num_queries, 120.0, dense=True, seed=seed
    )
    expected = [
        sorted(s.uid for s in grown.segments() if s.aabb.intersects(box)) for box in queries
    ]

    rows = []
    for strategy in ("incremental", "rebuild"):
        stopwatch = Stopwatch()
        if strategy == "incremental":
            index = FLATIndex(shared_segments, page_capacity=48)
            with stopwatch:
                for segment in new_segments:
                    index.insert(segment)
            index.validate()
        else:
            with stopwatch:
                index = FLATIndex(grown.segments(), page_capacity=48)
        pages, recalls = [], []
        for box, truth in zip(queries, expected):
            result = index.query(box)
            pages.append(result.stats.partitions_fetched)
            got = set(result.uids)
            recalls.append(len(got & set(truth)) / max(len(truth), 1))
        row = {
            "strategy": strategy,
            "maintenance_ms": stopwatch.elapsed * 1000.0,
            "partitions": sum(1 for p in index.partitions if p.num_objects > 0),
            "pages": mean(pages),
            "recall": mean(recalls),
        }
        rows.append(row)
        table.add_row(
            [strategy, row["maintenance_ms"], row["partitions"], row["pages"], row["recall"]]
        )
    return AblationResult("A7", table, rows)


def a8_touch_eps_sensitivity(
    eps_values: Sequence[float] = (0.5, 1.5, 3.0, 6.0, 12.0),
    n_per_side: int = 2000,
    seed: int = DEFAULT_SEED,
) -> AblationResult:
    """A8: join tolerance sweep — selectivity vs work for TOUCH.

    The touch distance is a biological parameter (how close branches must
    come to form a synapse); this sweep shows TOUCH's comparisons growing
    smoothly with the tolerance while results stay exact (validated against
    the nested-loop oracle at the smallest size).
    """
    from repro.core.touch.nested_loop import nested_loop_join

    objects_a, objects_b = dense_join_workload(n_per_side, seed=seed)
    table = Table(
        ["eps um", "pairs", "comparisons", "filtered", "total ms"],
        title="A8 TOUCH tolerance sensitivity",
    )
    rows = []
    for eps in eps_values:
        result = touch_join(objects_a, objects_b, eps=eps)
        row = {
            "eps": eps,
            "pairs": len(result.pairs),
            "comparisons": result.stats.comparisons,
            "filtered": result.stats.filtered,
            "total_ms": result.stats.total_ms,
        }
        rows.append(row)
        table.add_row([eps, row["pairs"], row["comparisons"], row["filtered"], row["total_ms"]])
    # Oracle spot-check at the largest tolerance.
    oracle = nested_loop_join(objects_a[:300], objects_b[:300], eps=eps_values[-1])
    check = touch_join(objects_a[:300], objects_b[:300], eps=eps_values[-1])
    if oracle.sorted_pairs() != check.sorted_pairs():
        raise AssertionError("TOUCH disagrees with the oracle in the eps sweep")
    return AblationResult("A8", table, rows)


def a6_touch_fanout(
    fanouts: Sequence[int] = (4, 8, 16, 32),
    n_per_side: int = 2000,
    eps: float = 3.0,
    seed: int = DEFAULT_SEED,
) -> AblationResult:
    """A6: hierarchy fanout sweep — comparisons and time."""
    objects_a, objects_b = dense_join_workload(n_per_side, seed=seed)
    table = Table(
        ["fanout", "comparisons", "memory B", "total ms"],
        title="A6 TOUCH tree fanout",
    )
    rows = []
    reference: list | None = None
    for fanout in fanouts:
        result = touch_join(objects_a, objects_b, eps=eps, fanout=fanout)
        if reference is None:
            reference = result.sorted_pairs()
        elif result.sorted_pairs() != reference:
            raise AssertionError("fanout must not change join results")
        row = {
            "fanout": fanout,
            "comparisons": result.stats.comparisons,
            "memory": result.stats.memory_bytes,
            "total_ms": result.stats.total_ms,
        }
        rows.append(row)
        table.add_row([fanout, row["comparisons"], row["memory"], row["total_ms"]])
    return AblationResult("A6", table, rows)
