"""TOUCH experiments: E6 (Figure 7 live stats) and E7 (scaling claims).

E6 runs the synapse-discovery join with every algorithm on the same
datasets and reports the Figure 7 charts: time spent on the join, memory
footprint and number of pairwise comparisons.  E7 sweeps the dataset size
and reports each competitor's slowdown relative to TOUCH — the "one order
of magnitude faster than PBSM, two orders faster than S3 / sweep" claims
of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.touch.join import touch_join
from repro.core.touch.nested_loop import nested_loop_join
from repro.core.touch.pbsm import pbsm_join
from repro.core.touch.plane_sweep import plane_sweep_join
from repro.core.touch.s3 import s3_join
from repro.core.touch.stats import JoinResult, segment_touch_refine
from repro.experiments.datasets import DEFAULT_SEED, dense_join_workload
from repro.utils.tables import Table

__all__ = [
    "JoinComparisonResult",
    "join_comparison_experiment",
    "JoinScalingResult",
    "join_scaling_experiment",
    "JOIN_ALGORITHMS",
]

JoinFunc = Callable[..., JoinResult]

#: The demo's selectable join methods ("TOUCH, S3, PBSM etc.", §4.2).
JOIN_ALGORITHMS: dict[str, JoinFunc] = {
    "TOUCH": touch_join,
    "PBSM": pbsm_join,
    "S3": s3_join,
    "plane-sweep": plane_sweep_join,
    "nested-loop": nested_loop_join,
}


#: The experiments' refinement predicate is the shared touch rule.
_touch_refine = segment_touch_refine


@dataclass
class JoinRow:
    algorithm: str
    pairs: int
    comparisons: int
    memory_bytes: int
    build_ms: float
    probe_ms: float
    total_ms: float
    replicated: int
    filtered: int


@dataclass
class JoinComparisonResult:
    """E6: one synapse-discovery join, all algorithms, identical output."""

    n_a: int
    n_b: int
    eps: float
    synapses: int
    rows: list[JoinRow]
    pairs: list[tuple[int, int]] = field(default_factory=list)  # the agreed pair set

    def render(self) -> str:
        table = Table(
            [
                "algorithm",
                "pairs",
                "comparisons",
                "memory B",
                "build ms",
                "probe ms",
                "total ms",
                "replicas",
                "filtered",
            ],
            title=f"E6 spatial join (|A|={self.n_a} axon x |B|={self.n_b} dendrite "
            f"segments, eps={self.eps:g} um) -> {self.synapses} synapses",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.algorithm,
                    row.pairs,
                    row.comparisons,
                    row.memory_bytes,
                    row.build_ms,
                    row.probe_ms,
                    row.total_ms,
                    row.replicated,
                    row.filtered,
                ]
            )
        return table.render()

    def row(self, algorithm: str) -> JoinRow:
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(algorithm)


def join_comparison_experiment(
    n_per_side: int = 2500,
    eps: float = 3.0,
    refine: bool = True,
    seed: int = DEFAULT_SEED,
    algorithms: Sequence[str] | None = None,
) -> JoinComparisonResult:
    """Run E6 on dense axon x dendrite samples (see ``dense_join_workload``).

    All algorithms must return the identical pair set; a mismatch raises.
    """
    objects_a, objects_b = dense_join_workload(n_per_side, seed=seed)
    selected = algorithms if algorithms is not None else list(JOIN_ALGORITHMS)
    refine_fn = _touch_refine if refine else None

    rows = []
    reference: list[tuple[int, int]] | None = None
    synapses = 0
    for name in selected:
        result = JOIN_ALGORITHMS[name](objects_a, objects_b, eps=eps, refine=refine_fn)
        if reference is None:
            reference = result.sorted_pairs()
            synapses = len(reference)
        elif result.sorted_pairs() != reference:
            raise AssertionError(f"{name} disagrees with {rows[0].algorithm}")
        stats = result.stats
        rows.append(
            JoinRow(
                algorithm=name,
                pairs=stats.results,
                comparisons=stats.comparisons,
                memory_bytes=stats.memory_bytes,
                build_ms=stats.build_ms,
                probe_ms=stats.probe_ms,
                total_ms=stats.total_ms,
                replicated=stats.replicated,
                filtered=stats.filtered,
            )
        )
    return JoinComparisonResult(
        n_a=len(objects_a),
        n_b=len(objects_b),
        eps=eps,
        synapses=synapses,
        rows=rows,
        pairs=reference if reference is not None else [],
    )


@dataclass
class ScalingRow:
    n_per_side: int
    algorithm: str
    total_ms: float
    comparisons: int
    memory_bytes: int
    slowdown_vs_touch: float


@dataclass
class JoinScalingResult:
    """E7: competitor slowdown relative to TOUCH as dataset size grows."""

    eps: float
    rows: list[ScalingRow]

    def render(self) -> str:
        table = Table(
            ["n/side", "algorithm", "total ms", "comparisons", "memory B", "vs TOUCH"],
            title=f"E7 join scaling (eps={self.eps:g} um)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.n_per_side,
                    row.algorithm,
                    row.total_ms,
                    row.comparisons,
                    row.memory_bytes,
                    f"{row.slowdown_vs_touch:.1f}x",
                ]
            )
        return table.render()

    def slowdown(self, algorithm: str, n_per_side: int | None = None) -> float:
        """Slowdown of ``algorithm`` at the largest (or given) size."""
        rows = [r for r in self.rows if r.algorithm == algorithm]
        if n_per_side is not None:
            rows = [r for r in rows if r.n_per_side == n_per_side]
        if not rows:
            raise KeyError(algorithm)
        return rows[-1].slowdown_vs_touch


def join_scaling_experiment(
    sizes: Sequence[int] = (1000, 2000, 4000),
    eps: float = 3.0,
    seed: int = DEFAULT_SEED,
    algorithms: Sequence[str] | None = None,
    nested_loop_max: int = 4000,
) -> JoinScalingResult:
    """Run E7: every algorithm at every size, slowdowns relative to TOUCH.

    ``nested_loop_max`` caps the sizes the O(n^2) strawman runs at; beyond
    it the quadratic cost is reported by extrapolation in EXPERIMENTS.md.
    """
    selected = algorithms if algorithms is not None else list(JOIN_ALGORITHMS)
    if "TOUCH" not in selected:
        selected = ["TOUCH", *selected]

    rows: list[ScalingRow] = []
    for n in sizes:
        objects_a, objects_b = dense_join_workload(n, seed=seed)
        touch_ms: float | None = None
        for name in selected:
            if name == "nested-loop" and n > nested_loop_max:
                continue
            result = JOIN_ALGORITHMS[name](objects_a, objects_b, eps=eps)
            total_ms = result.stats.total_ms
            if name == "TOUCH":
                touch_ms = total_ms
            assert touch_ms is not None
            rows.append(
                ScalingRow(
                    n_per_side=n,
                    algorithm=name,
                    total_ms=total_ms,
                    comparisons=result.stats.comparisons,
                    memory_bytes=result.stats.memory_bytes,
                    slowdown_vs_touch=total_ms / max(touch_ms, 1e-9),
                )
            )
    return JoinScalingResult(eps=eps, rows=rows)
