"""Axis-aligned bounding boxes (AABBs).

The AABB is the unit of everything spatial in this library: R-tree entries,
FLAT partitions, range queries, join predicates.  Boxes are *closed*:
touching boxes intersect, which matches the distance-join semantics of
synapse detection (branches within distance epsilon, inclusive).

Instances are immutable (``frozen`` dataclass with slots) so they can be
shared between index levels without defensive copying.  Hot paths (the join
algorithms run millions of intersection tests) use the free functions at the
bottom of this module on pre-extracted bound tuples where profiling demands
it, but the method forms are kept readable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import GeometryError
from repro.geometry.vec import Vec3

__all__ = ["AABB"]


@dataclass(frozen=True, slots=True)
class AABB:
    """A closed axis-aligned box ``[min_x, max_x] x [min_y, max_y] x [min_z, max_z]``."""

    min_x: float
    min_y: float
    min_z: float
    max_x: float
    max_y: float
    max_z: float

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_points(points: Iterable[Vec3 | Sequence[float]]) -> "AABB":
        """Tightest box containing ``points`` (must be non-empty)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("AABB.from_points requires at least one point") from None
        min_x = max_x = float(first[0])
        min_y = max_y = float(first[1])
        min_z = max_z = float(first[2])
        for p in it:
            x, y, z = float(p[0]), float(p[1]), float(p[2])
            if x < min_x:
                min_x = x
            if x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            if y > max_y:
                max_y = y
            if z < min_z:
                min_z = z
            if z > max_z:
                max_z = z
        return AABB(min_x, min_y, min_z, max_x, max_y, max_z)

    @staticmethod
    def from_center_extent(
        center: Vec3 | Sequence[float], extent: float | Sequence[float]
    ) -> "AABB":
        """Box centred at ``center`` with total side lengths ``extent``.

        ``extent`` may be a scalar (cube) or a per-axis triple.
        """
        cx, cy, cz = float(center[0]), float(center[1]), float(center[2])
        if isinstance(extent, (int, float)):
            hx = hy = hz = float(extent) / 2.0
        else:
            hx, hy, hz = float(extent[0]) / 2.0, float(extent[1]) / 2.0, float(extent[2]) / 2.0
        return AABB(cx - hx, cy - hy, cz - hz, cx + hx, cy + hy, cz + hz)

    @staticmethod
    def union_all(boxes: Iterable["AABB"]) -> "AABB":
        """Tightest box containing every box in ``boxes`` (must be non-empty)."""
        it = iter(boxes)
        try:
            acc = next(it)
        except StopIteration:
            raise GeometryError("AABB.union_all requires at least one box") from None
        min_x, min_y, min_z = acc.min_x, acc.min_y, acc.min_z
        max_x, max_y, max_z = acc.max_x, acc.max_y, acc.max_z
        for b in it:
            if b.min_x < min_x:
                min_x = b.min_x
            if b.min_y < min_y:
                min_y = b.min_y
            if b.min_z < min_z:
                min_z = b.min_z
            if b.max_x > max_x:
                max_x = b.max_x
            if b.max_y > max_y:
                max_y = b.max_y
            if b.max_z > max_z:
                max_z = b.max_z
        return AABB(min_x, min_y, min_z, max_x, max_y, max_z)

    def __post_init__(self) -> None:
        if not (
            self.min_x <= self.max_x and self.min_y <= self.max_y and self.min_z <= self.max_z
        ):
            raise GeometryError(f"degenerate AABB: {self!r}")
        for v in (self.min_x, self.min_y, self.min_z, self.max_x, self.max_y, self.max_z):
            if not math.isfinite(v):
                raise GeometryError(f"non-finite AABB bound: {self!r}")

    # -- predicates ---------------------------------------------------------
    def intersects(self, other: "AABB") -> bool:
        """True when the closed boxes share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
            and self.min_z <= other.max_z
            and other.min_z <= self.max_z
        )

    def intersects_expanded(self, other: "AABB", eps: float) -> bool:
        """True when ``self`` expanded by ``eps`` on every side intersects ``other``.

        Equivalent to ``self.expanded(eps).intersects(other)`` without
        allocating the expanded box; this is the inner test of the distance
        join and of FLAT's neighborhood detection.
        """
        return (
            self.min_x - eps <= other.max_x
            and other.min_x <= self.max_x + eps
            and self.min_y - eps <= other.max_y
            and other.min_y <= self.max_y + eps
            and self.min_z - eps <= other.max_z
            and other.min_z <= self.max_z + eps
        )

    def contains_point(self, point: Vec3 | Sequence[float]) -> bool:
        x, y, z = float(point[0]), float(point[1]), float(point[2])
        return (
            self.min_x <= x <= self.max_x
            and self.min_y <= y <= self.max_y
            and self.min_z <= z <= self.max_z
        )

    def contains_box(self, other: "AABB") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.min_z <= other.min_z
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
            and self.max_z >= other.max_z
        )

    # -- derived boxes -------------------------------------------------------
    def expanded(self, eps: float) -> "AABB":
        """Box grown by ``eps`` on every face (Minkowski sum with a cube)."""
        return AABB(
            self.min_x - eps,
            self.min_y - eps,
            self.min_z - eps,
            self.max_x + eps,
            self.max_y + eps,
            self.max_z + eps,
        )

    def union(self, other: "AABB") -> "AABB":
        return AABB(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            min(self.min_z, other.min_z),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
            max(self.max_z, other.max_z),
        )

    def intersection(self, other: "AABB") -> "AABB | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        min_z = max(self.min_z, other.min_z)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        max_z = min(self.max_z, other.max_z)
        if min_x > max_x or min_y > max_y or min_z > max_z:
            return None
        return AABB(min_x, min_y, min_z, max_x, max_y, max_z)

    def translated(self, offset: Vec3) -> "AABB":
        return AABB(
            self.min_x + offset.x,
            self.min_y + offset.y,
            self.min_z + offset.z,
            self.max_x + offset.x,
            self.max_y + offset.y,
            self.max_z + offset.z,
        )

    # -- measures --------------------------------------------------------------
    @property
    def sizes(self) -> tuple[float, float, float]:
        return (self.max_x - self.min_x, self.max_y - self.min_y, self.max_z - self.min_z)

    def volume(self) -> float:
        sx, sy, sz = self.sizes
        return sx * sy * sz

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree 'margin' measure)."""
        sx, sy, sz = self.sizes
        return sx + sy + sz

    def center(self) -> Vec3:
        return Vec3(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
            (self.min_z + self.max_z) / 2.0,
        )

    def enlargement(self, other: "AABB") -> float:
        """Volume growth needed for ``self`` to also cover ``other``.

        This is the R-tree ChooseSubtree criterion.
        """
        return self.union(other).volume() - self.volume()

    def overlap_volume(self, other: "AABB") -> float:
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.volume()

    def min_distance_to_point(self, point: Vec3 | Sequence[float]) -> float:
        x, y, z = float(point[0]), float(point[1]), float(point[2])
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        dz = max(self.min_z - z, 0.0, z - self.max_z)
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def min_distance_to_box(self, other: "AABB") -> float:
        dx = max(other.min_x - self.max_x, 0.0, self.min_x - other.max_x)
        dy = max(other.min_y - self.max_y, 0.0, self.min_y - other.max_y)
        dz = max(other.min_z - self.max_z, 0.0, self.min_z - other.max_z)
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    # -- iteration / misc --------------------------------------------------------
    def corners(self) -> Iterator[Vec3]:
        """Yield the eight corner points."""
        for x in (self.min_x, self.max_x):
            for y in (self.min_y, self.max_y):
                for z in (self.min_z, self.max_z):
                    yield Vec3(x, y, z)

    def bounds(self) -> tuple[float, float, float, float, float, float]:
        return (self.min_x, self.min_y, self.min_z, self.max_x, self.max_y, self.max_z)
