"""Vectorised (NumPy) bulk operations over many boxes at once.

The scalar :class:`~repro.geometry.aabb.AABB` API is the readable core;
these helpers cover the hot bulk paths — testing thousands of boxes against
one window, computing batch centres — without a Python-level loop.  Every
function is property-tested against the scalar implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.objects import SpatialObject

__all__ = [
    "boxes_to_array",
    "objects_to_array",
    "intersects_mask",
    "centers_of",
    "contained_mask",
    "count_intersecting",
]


def boxes_to_array(boxes: Sequence[AABB]) -> np.ndarray:
    """Pack boxes into an ``(n, 6)`` array of bounds.

    Column order matches :meth:`AABB.bounds`:
    ``min_x, min_y, min_z, max_x, max_y, max_z``.
    """
    if not boxes:
        return np.empty((0, 6), dtype=float)
    return np.array([b.bounds() for b in boxes], dtype=float)


def objects_to_array(objects: Sequence[SpatialObject]) -> np.ndarray:
    """Pack the AABBs of spatial objects into an ``(n, 6)`` bounds array."""
    if not objects:
        return np.empty((0, 6), dtype=float)
    return np.array([o.aabb.bounds() for o in objects], dtype=float)


def _validate(bounds: np.ndarray) -> np.ndarray:
    bounds = np.asarray(bounds, dtype=float)
    if bounds.ndim != 2 or bounds.shape[1] != 6:
        raise GeometryError("bounds array must have shape (n, 6)")
    return bounds


def intersects_mask(bounds: np.ndarray, box: AABB, eps: float = 0.0) -> np.ndarray:
    """Boolean mask: which of the ``(n, 6)`` boxes intersect ``box``?

    ``eps`` expands every candidate box (the distance-join predicate),
    matching :meth:`AABB.intersects_expanded`.
    """
    bounds = _validate(bounds)
    return (
        (bounds[:, 0] - eps <= box.max_x)
        & (box.min_x <= bounds[:, 3] + eps)
        & (bounds[:, 1] - eps <= box.max_y)
        & (box.min_y <= bounds[:, 4] + eps)
        & (bounds[:, 2] - eps <= box.max_z)
        & (box.min_z <= bounds[:, 5] + eps)
    )


def contained_mask(bounds: np.ndarray, box: AABB) -> np.ndarray:
    """Boolean mask: which boxes lie entirely inside ``box``?"""
    bounds = _validate(bounds)
    return (
        (bounds[:, 0] >= box.min_x)
        & (bounds[:, 1] >= box.min_y)
        & (bounds[:, 2] >= box.min_z)
        & (bounds[:, 3] <= box.max_x)
        & (bounds[:, 4] <= box.max_y)
        & (bounds[:, 5] <= box.max_z)
    )


def centers_of(bounds: np.ndarray) -> np.ndarray:
    """``(n, 3)`` array of box centres."""
    bounds = _validate(bounds)
    return (bounds[:, :3] + bounds[:, 3:]) / 2.0


def count_intersecting(bounds: np.ndarray, box: AABB, eps: float = 0.0) -> int:
    """How many boxes intersect ``box`` (vectorised selectivity probe)."""
    return int(np.count_nonzero(intersects_mask(bounds, box, eps)))
