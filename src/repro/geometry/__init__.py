"""3-D geometry kernel.

Pure-Python/NumPy primitives used by every other subsystem: vectors, axis-
aligned bounding boxes (the unit of indexing and joining), cylinder segments
(the unit of neuron morphology) and triangle meshes (neuron surfaces).
"""

from repro.geometry.aabb import AABB
from repro.geometry.distance import (
    point_aabb_distance,
    point_segment_distance,
    segment_segment_distance,
)
from repro.geometry.mesh import TriangleMesh, tube_mesh
from repro.geometry.segment import Segment
from repro.geometry.vec import Vec3

__all__ = [
    "AABB",
    "Segment",
    "TriangleMesh",
    "Vec3",
    "point_aabb_distance",
    "point_segment_distance",
    "segment_segment_distance",
    "tube_mesh",
]
