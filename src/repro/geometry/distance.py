"""Exact distance computations.

The synapse "touch rule" (Kozloski et al. 2008, cited as [7] in the paper)
declares a synapse candidate where an axonal and a dendritic branch come
within a small distance of each other.  The join algorithms first filter by
AABB (cheap) and then *refine* with the exact segment-segment distance here.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.aabb import AABB
from repro.geometry.segment import Segment
from repro.geometry.vec import Vec3

__all__ = [
    "point_segment_distance",
    "segment_segment_closest",
    "segment_segment_distance",
    "point_aabb_distance",
    "segments_touch",
]

_EPS = 1e-12


def point_aabb_distance(point: Vec3 | Sequence[float], box: AABB) -> float:
    """Euclidean distance from ``point`` to the closed box (0 inside)."""
    return box.min_distance_to_point(point)


def point_segment_distance(point: Vec3, a: Vec3, b: Vec3) -> float:
    """Distance from ``point`` to the line segment ``a``–``b``."""
    ab = b - a
    denom = ab.norm_squared()
    if denom <= _EPS:
        return point.distance_to(a)
    t = (point - a).dot(ab) / denom
    t = max(0.0, min(1.0, t))
    closest = a.lerp(b, t)
    return point.distance_to(closest)


def segment_segment_closest(
    p0: Vec3, p1: Vec3, q0: Vec3, q1: Vec3
) -> tuple[float, float, float]:
    """Closest approach of two segments.

    Returns ``(s, t, distance)`` where ``s`` parameterises the closest point
    on ``p0p1`` and ``t`` the one on ``q0q1`` (both clamped to [0, 1]).
    Standard clamped closed-form solution (Eberly); handles degenerate
    (point-like) segments and the parallel case.
    """
    d1 = p1 - p0
    d2 = q1 - q0
    r = p0 - q0
    a = d1.norm_squared()
    e = d2.norm_squared()
    f = d2.dot(r)

    if a <= _EPS and e <= _EPS:
        return 0.0, 0.0, p0.distance_to(q0)
    if a <= _EPS:
        # First segment degenerates to a point.
        t = max(0.0, min(1.0, f / e))
        return 0.0, t, p0.distance_to(q0.lerp(q1, t))
    c = d1.dot(r)
    if e <= _EPS:
        # Second segment degenerates to a point.
        s = max(0.0, min(1.0, -c / a))
        return s, 0.0, q0.distance_to(p0.lerp(p1, s))

    b = d1.dot(d2)
    denom = a * e - b * b
    if denom > _EPS:
        s = max(0.0, min(1.0, (b * f - c * e) / denom))
    else:
        s = 0.0  # parallel: pick an end and clamp below
    t = (b * s + f) / e
    if t < 0.0:
        t = 0.0
        s = max(0.0, min(1.0, -c / a))
    elif t > 1.0:
        t = 1.0
        s = max(0.0, min(1.0, (b - c) / a))
    closest_p = p0.lerp(p1, s)
    closest_q = q0.lerp(q1, t)
    return s, t, closest_p.distance_to(closest_q)


def segment_segment_distance(p0: Vec3, p1: Vec3, q0: Vec3, q1: Vec3) -> float:
    """Minimum distance between segments ``p0p1`` and ``q0q1``."""
    return segment_segment_closest(p0, p1, q0, q1)[2]


def segments_touch(seg_a: Segment, seg_b: Segment, eps: float = 0.0) -> bool:
    """Apply the touch rule: capsule surfaces within ``eps`` of each other.

    Two capsules touch when the distance between their axes does not exceed
    the sum of their radii plus the tolerance ``eps``.
    """
    axis_distance = segment_segment_distance(seg_a.p0, seg_a.p1, seg_b.p0, seg_b.p1)
    return axis_distance <= seg_a.radius + seg_b.radius + eps + 1e-12


def aabb_aabb_distance(a: AABB, b: AABB) -> float:
    """Minimum distance between two boxes (0 when they intersect)."""
    return a.min_distance_to_box(b)


def brute_force_closest_pair(points: Sequence[Vec3]) -> tuple[int, int, float]:
    """O(n^2) closest pair of points; small-scale test oracle.

    Returns ``(i, j, distance)`` with ``i < j``.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    best = (0, 1, math.inf)
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            d = points[i].distance_to(points[j])
            if d < best[2]:
                best = (i, j, d)
    return best
