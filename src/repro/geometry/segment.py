"""Cylinder segments — the atomic spatial element of a neuron morphology.

A neuron branch is a polyline of 3-D points with per-point radii; each
consecutive pair forms a :class:`Segment` (a capsule/cylinder).  Segments are
what the Blue Brain tools index: FLAT partitions them, SCOUT reconstructs
skeletons from them and TOUCH joins axonal against dendritic ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3

__all__ = ["Segment"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A capsule between ``p0`` and ``p1`` with cross-section ``radius``.

    ``uid`` is a dataset-wide unique id assigned when a circuit is flattened;
    ``neuron_id``/``branch_id``/``order`` record provenance (which neuron,
    which branch, position along the branch).  Provenance is *never* consulted
    by the spatial algorithms — it exists for ground-truth evaluation (e.g.
    did SCOUT prefetch the branch the user follows?) and for reporting.
    """

    uid: int
    p0: Vec3
    p1: Vec3
    radius: float
    neuron_id: int = -1
    branch_id: int = -1
    order: int = -1
    _aabb: AABB = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"segment {self.uid} has negative radius {self.radius}")
        if not (self.p0.is_finite() and self.p1.is_finite()):
            raise GeometryError(f"segment {self.uid} has non-finite endpoints")
        r = self.radius
        box = AABB(
            min(self.p0.x, self.p1.x) - r,
            min(self.p0.y, self.p1.y) - r,
            min(self.p0.z, self.p1.z) - r,
            max(self.p0.x, self.p1.x) + r,
            max(self.p0.y, self.p1.y) + r,
            max(self.p0.z, self.p1.z) + r,
        )
        object.__setattr__(self, "_aabb", box)

    @property
    def aabb(self) -> AABB:
        """Tight bounding box of the capsule (inflated by the radius)."""
        return self._aabb

    @property
    def length(self) -> float:
        return self.p0.distance_to(self.p1)

    @property
    def direction(self) -> Vec3:
        """Unit vector from ``p0`` to ``p1`` (zero vector for degenerate segments)."""
        return (self.p1 - self.p0).normalized()

    def midpoint(self) -> Vec3:
        return self.p0.lerp(self.p1, 0.5)

    def point_at(self, t: float) -> Vec3:
        """Point at parameter ``t`` in [0, 1] along the axis."""
        return self.p0.lerp(self.p1, t)

    def volume(self) -> float:
        """Cylinder volume (caps ignored): pi r^2 L."""
        import math

        return math.pi * self.radius * self.radius * self.length
