"""Triangle meshes and tube ("surface mesh") generation.

The paper's Figure 1 shows neurons rendered as surface meshes; the datasets
behind the FLAT/SCOUT demos are described as "represented by a surface mesh".
This module provides the mesh substrate: a compact indexed triangle mesh and
a generator that skins a branch polyline into a tube, so experiments can run
over mesh triangles as well as capsule segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3

__all__ = ["TriangleMesh", "tube_mesh"]


@dataclass
class TriangleMesh:
    """Indexed triangle mesh.

    ``vertices`` is an ``(n, 3)`` float array; ``faces`` an ``(m, 3)`` int
    array of vertex indices.
    """

    vertices: np.ndarray
    faces: np.ndarray

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.faces = np.asarray(self.faces, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise GeometryError("vertices must be an (n, 3) array")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise GeometryError("faces must be an (m, 3) array")
        if len(self.faces) and (self.faces.min() < 0 or self.faces.max() >= len(self.vertices)):
            raise GeometryError("face indices out of range")

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def num_faces(self) -> int:
        return int(self.faces.shape[0])

    def aabb(self) -> AABB:
        if self.num_vertices == 0:
            raise GeometryError("empty mesh has no bounding box")
        lo = self.vertices.min(axis=0)
        hi = self.vertices.max(axis=0)
        return AABB(
            float(lo[0]), float(lo[1]), float(lo[2]), float(hi[0]), float(hi[1]), float(hi[2])
        )

    def surface_area(self) -> float:
        if self.num_faces == 0:
            return 0.0
        tri = self.vertices[self.faces]
        e1 = tri[:, 1] - tri[:, 0]
        e2 = tri[:, 2] - tri[:, 0]
        cross = np.cross(e1, e2)
        return float(0.5 * np.linalg.norm(cross, axis=1).sum())

    def triangle_centroids(self) -> np.ndarray:
        return self.vertices[self.faces].mean(axis=1)

    def merged_with(self, other: "TriangleMesh") -> "TriangleMesh":
        """Concatenate two meshes (re-indexing the second one's faces)."""
        vertices = np.vstack([self.vertices, other.vertices])
        faces = np.vstack([self.faces, other.faces + self.num_vertices])
        return TriangleMesh(vertices, faces)


def _orthonormal_frame(direction: Vec3) -> tuple[Vec3, Vec3]:
    """Two unit vectors orthogonal to ``direction`` and to each other."""
    d = direction.normalized()
    helper = Vec3(0.0, 0.0, 1.0) if abs(d.z) < 0.9 else Vec3(1.0, 0.0, 0.0)
    u = d.cross(helper).normalized()
    v = d.cross(u).normalized()
    return u, v


def tube_mesh(path: Sequence[Vec3], radii: Sequence[float], sides: int = 6) -> TriangleMesh:
    """Skin a polyline into a tube of triangles (a branch surface mesh).

    ``path`` is the branch centreline, ``radii`` the per-point radii, and
    ``sides`` the number of vertices per cross-section ring.  Consecutive
    rings are stitched with two triangles per side; the tube is open-ended
    (caps add nothing to the experiments).
    """
    if len(path) != len(radii):
        raise GeometryError("path and radii must have the same length")
    if len(path) < 2:
        raise GeometryError("tube needs at least two path points")
    if sides < 3:
        raise GeometryError("tube needs at least 3 sides")

    rings: list[list[Vec3]] = []
    for i, center in enumerate(path):
        if i == 0:
            direction = path[1] - path[0]
        elif i == len(path) - 1:
            direction = path[-1] - path[-2]
        else:
            direction = path[i + 1] - path[i - 1]
        if direction.norm() == 0.0:
            direction = Vec3(0.0, 0.0, 1.0)
        u, v = _orthonormal_frame(direction)
        ring = []
        for k in range(sides):
            angle = 2.0 * math.pi * k / sides
            offset = u * (math.cos(angle) * radii[i]) + v * (math.sin(angle) * radii[i])
            ring.append(center + offset)
        rings.append(ring)

    vertices = np.array([[p.x, p.y, p.z] for ring in rings for p in ring], dtype=float)
    faces = []
    for i in range(len(rings) - 1):
        base0 = i * sides
        base1 = (i + 1) * sides
        for k in range(sides):
            k2 = (k + 1) % sides
            faces.append((base0 + k, base1 + k, base1 + k2))
            faces.append((base0 + k, base1 + k2, base0 + k2))
    return TriangleMesh(vertices, np.array(faces, dtype=np.int64))
