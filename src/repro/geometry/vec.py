"""Immutable 3-D vector.

``Vec3`` is a ``NamedTuple`` so instances are lightweight, hashable and
unpackable (``x, y, z = v``).  Component-wise helpers cover the handful of
operations the rest of the library needs; bulk math uses NumPy arrays instead
of lists of ``Vec3``.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple

__all__ = ["Vec3"]


class Vec3(NamedTuple):
    """A point or direction in 3-D space."""

    x: float
    y: float
    z: float

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: "Vec3") -> "Vec3":  # type: ignore[override]
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":  # type: ignore[override]
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__  # type: ignore[assignment]

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    # -- products and norms ---------------------------------------------
    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        return math.sqrt(self.dot(self))

    def norm_squared(self) -> float:
        return self.dot(self)

    def normalized(self) -> "Vec3":
        """Return a unit-length copy; the zero vector normalises to itself."""
        n = self.norm()
        if n == 0.0:
            return self
        return self / n

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).norm()

    # -- utilities --------------------------------------------------------
    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        """Linear interpolation: ``self`` at ``t=0``, ``other`` at ``t=1``."""
        return Vec3(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )

    def is_finite(self) -> bool:
        return math.isfinite(self.x) and math.isfinite(self.y) and math.isfinite(self.z)

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    def components(self) -> Iterator[float]:
        return iter((self.x, self.y, self.z))
