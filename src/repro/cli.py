"""Command-line demo runner: ``python -m repro <command>``.

The paper is a *demo*; this CLI is its terminal incarnation.  Each
subcommand reruns one demo station and prints the same statistics the
screens displayed, plus an ASCII rendering of the figure:

* ``demo flat``  — §2: FLAT vs R-tree on dense/sparse windows, density
  sweep, crawl-order figure;
* ``demo scout`` — §3: candidate pruning and the walkthrough comparison,
  walk figure;
* ``demo touch`` — §4: the join comparison and the scaling sweep;
* ``demo all``   — all three in sequence;
* ``claims``     — the headline claims C1-C5, measured;
* ``circuit``    — generate a circuit, print its morphometry, optionally
  export it (SWC + manifest) with ``--out``.
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Data-driven Neuroscience' (SIGMOD'13): "
        "FLAT, SCOUT and TOUCH demos in the terminal.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="re-run a demo station")
    demo.add_argument("station", choices=["flat", "scout", "touch", "all"])
    demo.add_argument("--quick", action="store_true", help="smaller workloads")
    demo.add_argument("--no-figures", action="store_true", help="skip ASCII figures")

    claims = sub.add_parser("claims", help="measure the paper's headline claims")
    claims.add_argument("--full", action="store_true", help="full-size workloads")

    report = sub.add_parser("report", help="run every experiment, emit one report")
    report.add_argument("--full", action="store_true", help="full-size workloads")
    report.add_argument("--out", type=str, default=None, help="write the report to a file")

    circuit = sub.add_parser("circuit", help="generate and inspect a circuit")
    circuit.add_argument("--neurons", type=int, default=20)
    circuit.add_argument("--seed", type=int, default=0)
    circuit.add_argument("--out", type=str, default=None, help="export directory (SWC + manifest)")
    circuit.add_argument("--no-figures", action="store_true")
    return parser


def _demo_flat(quick: bool, figures: bool) -> None:
    from repro.experiments.fig_flat import (
        crawl_trace_experiment,
        density_sweep_experiment,
        flat_vs_rtree_experiment,
    )

    n_queries = 4 if quick else 12
    for region in ("dense", "sparse"):
        print(flat_vs_rtree_experiment(region=region, num_queries=n_queries).render())
        print()
    factors = (1, 2, 4) if quick else (1, 2, 4, 8)
    print(density_sweep_experiment(density_factors=factors).render())
    print()
    trace = crawl_trace_experiment()
    print(trace.render())
    if figures:
        from repro.experiments.datasets import circuit_dataset, flat_index_for
        from repro.viz import render_crawl
        from repro.workloads.ranges import density_stratified_queries

        circuit = circuit_dataset(n_neurons=40)
        index = flat_index_for(n_neurons=40, page_capacity=48)
        box = density_stratified_queries(circuit.segments(), 1, 150.0, dense=True, seed=2013)[0]
        print()
        print(render_crawl(index, trace.crawl_order, box))


def _demo_scout(quick: bool, figures: bool) -> None:
    from repro.experiments.fig_scout import pruning_experiment, walkthrough_experiment

    print(pruning_experiment().render())
    print()
    print(walkthrough_experiment(num_walks=1 if quick else 3).render())
    if figures:
        from repro.experiments.datasets import circuit_dataset
        from repro.viz import render_walk
        from repro.workloads.walks import branch_walk

        circuit = circuit_dataset(n_neurons=40)
        walk = branch_walk(circuit, window_extent=90.0, seed=3, min_steps=14)
        print()
        print(render_walk(circuit.segments(), walk.path, walk.queries[:4]))


def _demo_touch(quick: bool, figures: bool) -> None:
    from repro.experiments.fig_touch import (
        join_comparison_experiment,
        join_scaling_experiment,
    )

    print(join_comparison_experiment(n_per_side=800 if quick else 2500).render())
    print()
    sizes = (500, 1000) if quick else (1000, 2000, 4000)
    print(join_scaling_experiment(sizes=sizes, nested_loop_max=min(sizes[-1], 2000)).render())


def _run_demo(args: argparse.Namespace) -> int:
    figures = not args.no_figures
    stations = {
        "flat": _demo_flat,
        "scout": _demo_scout,
        "touch": _demo_touch,
    }
    selected = list(stations) if args.station == "all" else [args.station]
    for position, name in enumerate(selected):
        if position:
            print("\n" + "=" * 72 + "\n")
        print(f"--- demo station: {name.upper()} ---\n")
        stations[name](args.quick, figures)
    return 0


def _run_claims(args: argparse.Namespace) -> int:
    from repro.experiments.claims import headline_claims

    report = headline_claims(quick=not args.full)
    print(report.render())
    return 0 if report.all_hold else 1


def _run_circuit(args: argparse.Namespace) -> int:
    from repro.neuro.circuit import generate_circuit
    from repro.neuro.morphometry import circuit_morphometry

    circuit = generate_circuit(n_neurons=args.neurons, seed=args.seed)
    print(circuit_morphometry(circuit).render())
    if not args.no_figures:
        from repro.viz import render_density

        print()
        print(render_density(circuit.segments()))
    if args.out is not None:
        from repro.neuro.persistence import save_circuit

        manifest = save_circuit(circuit, args.out)
        print(f"\nexported to {manifest.parent} ({circuit.num_neurons} SWC files + manifest)")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import generate_report

    text = generate_report(quick=not args.full, progress=print)
    if args.out is not None:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"report written to {args.out}")
    else:
        print()
        print(text)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "claims":
        return _run_claims(args)
    if args.command == "circuit":
        return _run_circuit(args)
    if args.command == "report":
        return _run_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
