"""Command-line demo runner: ``python -m repro <command>``.

The paper is a *demo*; this CLI is its terminal incarnation.  Each
subcommand reruns one demo station and prints the same statistics the
screens displayed, plus an ASCII rendering of the figure:

* ``demo flat``  — §2: FLAT vs R-tree on dense/sparse windows, density
  sweep, crawl-order figure;
* ``demo scout`` — §3: candidate pruning and the walkthrough comparison,
  walk figure;
* ``demo touch`` — §4: the join comparison and the scaling sweep;
* ``demo all``   — all three in sequence;
* ``claims``     — the headline claims C1-C5, measured;
* ``circuit``    — generate a circuit, print its morphometry, optionally
  export it (SWC + manifest) with ``--out``;
* ``query``      — one declarative query through the :class:`SpatialEngine`
  facade (range, knn, join or walk), with the planner's ``explain`` output
  and the engine telemetry;
* ``serve-bench`` — drive a mixed traffic workload through the
  :class:`~repro.service.ShardedEngine` query service across a sweep of
  shard counts, reporting modelled makespan vs total work and the service
  telemetry; ``--write-fraction`` turns the stream into a live read-write
  mix whose insert/delete/move mutations publish epochs while the reads
  run;
* ``serve``      — the network front door (:mod:`repro.server`): an asyncio
  TCP server fronting the sharded service, speaking the length-prefixed
  JSON protocol; ``--wal`` makes it durable, ``--replica-of HOST:PORT``
  starts it as a WAL-shipped read replica of a running primary;
* ``connect``    — a small interactive client for a running ``serve``
  (query, mutate, stats, checkpoint, promote, shutdown);
* ``recover``    — rebuild an engine from a durability directory (newest
  valid checkpoint + WAL-suffix replay, :mod:`repro.durability`) and run a
  validation query against the recovered state;
* ``bench``      — the unified benchmark suite (:mod:`repro.bench`): emits
  the schema-versioned BENCH JSON and exits non-zero on regression against
  a baseline;
* ``datasets``   — the dataset catalog (:mod:`repro.catalog`):
  ``list/create/tag/untag/lineage/diff/prune`` named datasets in a catalog
  directory; ``query join --dataset A@v3 --against B@v1`` runs a
  cross-dataset spatial join at the tagged epochs, and ``serve --catalog``
  lets remote clients do the same.
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]


def _fail(message: object) -> int:
    """One-line diagnostic on stderr; the CLI's uniform error exit code.

    Every expected failure (bad input, missing directories, corrupt
    durable state) funnels through here so scripts can rely on a clean
    ``error: ...`` line on stderr and exit code 2 — never a traceback.
    """
    import sys

    print(f"error: {message}", file=sys.stderr)
    return 2


def _package_version() -> str:
    """The installed distribution version, falling back to the source tree."""
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Data-driven Neuroscience' (SIGMOD'13): "
        "FLAT, SCOUT and TOUCH demos in the terminal.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="re-run a demo station")
    demo.add_argument("station", choices=["flat", "scout", "touch", "all"])
    demo.add_argument("--quick", action="store_true", help="smaller workloads")
    demo.add_argument("--no-figures", action="store_true", help="skip ASCII figures")

    claims = sub.add_parser("claims", help="measure the paper's headline claims")
    claims.add_argument("--full", action="store_true", help="full-size workloads")

    report = sub.add_parser("report", help="run every experiment, emit one report")
    report.add_argument("--full", action="store_true", help="full-size workloads")
    report.add_argument("--out", type=str, default=None, help="write the report to a file")

    circuit = sub.add_parser("circuit", help="generate and inspect a circuit")
    circuit.add_argument("--neurons", type=int, default=20)
    circuit.add_argument("--seed", type=int, default=0)
    circuit.add_argument("--out", type=str, default=None, help="export directory (SWC + manifest)")
    circuit.add_argument("--no-figures", action="store_true")

    query = sub.add_parser("query", help="run one declarative query on the engine")
    query.add_argument("kind", choices=["range", "knn", "join", "walk"])
    query.add_argument("--neurons", type=int, default=20, help="generated circuit size")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--circuit", type=str, default=None,
        help="open a saved circuit directory instead of generating one",
    )
    query.add_argument(
        "--strategy", type=str, default=None,
        help="pin the execution strategy instead of letting the planner pick",
    )
    query.add_argument(
        "--explain", action="store_true", help="print the plan only; execute nothing"
    )
    query.add_argument(
        "--trace", action="store_true",
        help="run under a trace and print the span tree (EXPLAIN-ANALYZE style, "
        "with per-span timings and kernel-batch counts)",
    )
    query.add_argument(
        "--root", type=str, default=None, metavar="DIR",
        help="query a sharded durable root (wal/ + checkpoints/) instead of "
        "building an in-process engine (range, knn and join kinds)",
    )
    query.add_argument("--extent", type=float, default=120.0, help="window edge length (um)")
    query.add_argument(
        "--center", type=str, default=None,
        help="query centre as x,y,z (default: dataset centre)",
    )
    query.add_argument("--k", type=int, default=8, help="knn: neighbours to return")
    query.add_argument("--eps", type=float, default=3.0, help="join: distance threshold (um)")
    query.add_argument("--steps", type=int, default=8, help="walk: minimum window count")
    query.add_argument(
        "--dataset", type=str, default=None, metavar="NAME[@TAG]",
        help="join: build side from this catalogued dataset (needs --against)",
    )
    query.add_argument(
        "--against", type=str, default=None, metavar="NAME[@TAG]",
        help="join: probe side from this catalogued dataset (needs --dataset)",
    )
    query.add_argument(
        "--catalog", type=str, default=".", metavar="DIR",
        help="catalog root for --dataset/--against (default: current directory)",
    )

    serve = sub.add_parser(
        "serve-bench",
        help="drive a mixed traffic workload through the sharded query service",
    )
    serve.add_argument("--neurons", type=int, default=30, help="generated circuit size")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--circuit", type=str, default=None,
        help="open a saved circuit directory instead of generating one",
    )
    serve.add_argument(
        "--shards", type=str, default="1,2,4", metavar="CSV",
        help="shard counts to sweep (default: 1,2,4)",
    )
    serve.add_argument("--queries", type=int, default=32, help="traffic queries per sweep point")
    serve.add_argument("--extent", type=float, default=150.0, help="range window edge (um)")
    serve.add_argument(
        "--workers", type=int, default=None, help="pool threads (default: one per shard)"
    )
    serve.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="shard fan-out executor: in-process thread pool (GIL-bound) or "
        "process pool over shared-memory arena publications (default: thread)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None,
        help="admission: concurrent queries (default: shard count)",
    )
    serve.add_argument("--max-queued", type=int, default=64, help="admission: wait-queue bound")
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-query deadline in seconds"
    )
    serve.add_argument(
        "--no-joins", action="store_true", help="serve ranges and knn only"
    )
    serve.add_argument(
        "--write-fraction", type=float, default=0.0, metavar="FRACTION",
        help="serve a live read-write mix: this fraction of the ops are "
        "insert/delete/move mutations published as epochs (default 0 = read-only)",
    )
    serve.add_argument(
        "--wal", type=str, default=None, metavar="DIR",
        help="make the service durable: journal every mutation batch into a "
        "write-ahead log under DIR (one subdirectory per sweep point when "
        "several shard counts are swept); 'repro recover' restores it",
    )

    server = sub.add_parser(
        "serve",
        help="serve the sharded engine over TCP (primary or WAL-shipped replica)",
    )
    server.add_argument("--host", type=str, default="127.0.0.1")
    server.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick an ephemeral port, printed in the banner)",
    )
    server.add_argument("--neurons", type=int, default=30, help="generated circuit size")
    server.add_argument("--seed", type=int, default=0)
    server.add_argument(
        "--circuit", type=str, default=None,
        help="open a saved circuit directory instead of generating one",
    )
    server.add_argument(
        "--shards", type=int, default=None,
        help="service shard count (default 4; a replica defaults to the "
        "primary's tiling)",
    )
    server.add_argument(
        "--workers", type=int, default=None, help="pool threads (default: one per shard)"
    )
    server.add_argument(
        "--max-in-flight", type=int, default=None,
        help="admission: concurrent queries (default: shard count)",
    )
    server.add_argument("--max-queued", type=int, default=64, help="admission: wait-queue bound")
    server.add_argument(
        "--timeout", type=float, default=None, help="per-query deadline in seconds"
    )
    server.add_argument(
        "--session-queue", type=int, default=32,
        help="per-connection pending-request bound (past it: structured busy)",
    )
    server.add_argument(
        "--wal", type=str, default=None, metavar="DIR",
        help="durability root: journal writes before the ack; a replica with "
        "--wal journals every batch it applies from the stream",
    )
    server.add_argument(
        "--replica-of", type=str, default=None, metavar="HOST:PORT",
        help="start as a read replica: bootstrap from this primary's snapshot "
        "and tail its mutation stream (writes are rejected until promoted)",
    )
    server.add_argument(
        "--catalog", type=str, default=None, metavar="DIR",
        help="attach a dataset catalog: clients may send cross-dataset joins "
        "against its tagged datasets",
    )
    server.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="record queries slower than MS into the ring-buffer slow-query "
        "log (queryable via 'repro connect --cmd slowlog')",
    )

    connect = sub.add_parser(
        "connect", help="interactive client for a running 'repro serve'"
    )
    connect.add_argument("address", type=str, metavar="HOST:PORT")
    connect.add_argument(
        "--cmd", action="append", default=None, metavar="COMMAND",
        help="run this command instead of the interactive loop (repeatable)",
    )
    connect.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout in seconds"
    )

    recover = sub.add_parser(
        "recover",
        help="rebuild an engine from a durability directory (checkpoint + WAL)",
    )
    recover.add_argument("dir", type=str, help="durability directory (wal/ + checkpoints/)")
    recover.add_argument(
        "--sharded", action="store_true",
        help="recover a ShardedEngine instead of a single SpatialEngine",
    )
    recover.add_argument(
        "--shards", type=int, default=None,
        help="shard count override (default: the checkpoint manifest's spec)",
    )
    recover.add_argument(
        "--at-epoch", type=int, default=None, metavar="E",
        help="time-travel: rebuild the state at exactly epoch E",
    )
    recover.add_argument(
        "--extent", type=float, default=150.0,
        help="validation range-window edge length (um)",
    )
    recover.add_argument(
        "--no-verify", action="store_true", help="skip the validation query"
    )

    bench = sub.add_parser("bench", help="run the benchmark suite, emit BENCH JSON")
    bench.add_argument("--smoke", action="store_true", help="small CI-sized workloads")
    bench.add_argument(
        "--json", type=str, default="BENCH_PR2.json", metavar="PATH",
        help="where to write the JSON report",
    )
    bench.add_argument(
        "--baseline", type=str, default=None, metavar="PATH",
        help="baseline JSON to compare against; exit non-zero on regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRACTION",
        help="allowed slowdown vs the baseline (default 0.30)",
    )
    bench.add_argument(
        "--modes", type=str, default=None, metavar="CSV",
        help="kernel backends to measure (default: all available)",
    )
    bench.add_argument(
        "--only", type=str, default=None, metavar="PREFIX",
        help="run only workloads whose name starts with PREFIX (e.g. 'mutate.')",
    )

    datasets = sub.add_parser(
        "datasets", help="manage named, tagged datasets in a catalog directory"
    )
    datasets.add_argument(
        "--catalog", type=str, default=".", metavar="DIR",
        help="catalog root (default: current directory)",
    )
    dsub = datasets.add_subparsers(dest="datasets_command", required=True)

    dsub.add_parser("list", help="list datasets, their tips and tags")

    ds_create = dsub.add_parser(
        "create", help="register a new dataset from a circuit (saved or generated)"
    )
    ds_create.add_argument("name", type=str)
    ds_create.add_argument("--neurons", type=int, default=20, help="generated circuit size")
    ds_create.add_argument("--seed", type=int, default=0)
    ds_create.add_argument(
        "--circuit", type=str, default=None,
        help="import a saved circuit directory instead of generating one",
    )

    ds_tag = dsub.add_parser("tag", help="pin a tag to an epoch (default: the tip)")
    ds_tag.add_argument("name", type=str)
    ds_tag.add_argument("tag", type=str)
    ds_tag.add_argument("--epoch", type=int, default=None)

    ds_untag = dsub.add_parser("untag", help="delete a tag (leaves a tombstone)")
    ds_untag.add_argument("name", type=str)
    ds_untag.add_argument("tag", type=str)

    ds_lineage = dsub.add_parser(
        "lineage", help="per-epoch provenance reconstructed from WAL + checkpoints"
    )
    ds_lineage.add_argument("name", type=str)
    ds_lineage.add_argument("--at-epoch", type=int, default=None, metavar="E")

    ds_diff = dsub.add_parser(
        "diff", help="uid-level adds/deletes/moves between two references"
    )
    ds_diff.add_argument("ref_a", type=str, metavar="NAME[@TAG]")
    ds_diff.add_argument("ref_b", type=str, metavar="NAME[@TAG]")

    ds_prune = dsub.add_parser(
        "prune", help="reclaim checkpoints and WAL segments no tag still needs"
    )
    ds_prune.add_argument("name", type=str)
    return parser


def _demo_flat(quick: bool, figures: bool) -> None:
    from repro.experiments.fig_flat import (
        crawl_trace_experiment,
        density_sweep_experiment,
        flat_vs_rtree_experiment,
    )

    n_queries = 4 if quick else 12
    for region in ("dense", "sparse"):
        print(flat_vs_rtree_experiment(region=region, num_queries=n_queries).render())
        print()
    factors = (1, 2, 4) if quick else (1, 2, 4, 8)
    print(density_sweep_experiment(density_factors=factors).render())
    print()
    trace = crawl_trace_experiment()
    print(trace.render())
    if figures:
        from repro.experiments.datasets import circuit_dataset, flat_index_for
        from repro.viz import render_crawl
        from repro.workloads.ranges import density_stratified_queries

        circuit = circuit_dataset(n_neurons=40)
        index = flat_index_for(n_neurons=40, page_capacity=48)
        box = density_stratified_queries(circuit.segments(), 1, 150.0, dense=True, seed=2013)[0]
        print()
        print(render_crawl(index, trace.crawl_order, box))


def _demo_scout(quick: bool, figures: bool) -> None:
    from repro.experiments.fig_scout import pruning_experiment, walkthrough_experiment

    print(pruning_experiment().render())
    print()
    print(walkthrough_experiment(num_walks=1 if quick else 3).render())
    if figures:
        from repro.experiments.datasets import circuit_dataset
        from repro.viz import render_walk
        from repro.workloads.walks import branch_walk

        circuit = circuit_dataset(n_neurons=40)
        walk = branch_walk(circuit, window_extent=90.0, seed=3, min_steps=14)
        print()
        print(render_walk(circuit.segments(), walk.path, walk.queries[:4]))


def _demo_touch(quick: bool, figures: bool) -> None:
    from repro.experiments.fig_touch import (
        join_comparison_experiment,
        join_scaling_experiment,
    )

    n_per_side = 800 if quick else 2500
    comparison = join_comparison_experiment(n_per_side=n_per_side)
    print(comparison.render())
    print()
    sizes = (500, 1000) if quick else (1000, 2000, 4000)
    print(join_scaling_experiment(sizes=sizes, nested_loop_max=min(sizes[-1], 2000)).render())
    if figures:
        from repro.experiments.datasets import dense_join_workload
        from repro.viz import render_density

        # Same (cached) workload and the pair set the table above agreed on;
        # the canvas spans the full join input so synapse placement reads in
        # tissue context.
        from repro.geometry.aabb import AABB

        axons, dendrites = dense_join_workload(n_per_side)
        matched = {a for a, _ in comparison.pairs} | {b for _, b in comparison.pairs}
        touching = [s for s in (*axons, *dendrites) if s.uid in matched]
        if touching:
            world = AABB.union_all(s.aabb for s in (*axons, *dendrites))
            print()
            print("segments participating in candidate synapses:")
            print(render_density(touching, world=world))


def _run_demo(args: argparse.Namespace) -> int:
    figures = not args.no_figures
    stations = {
        "flat": _demo_flat,
        "scout": _demo_scout,
        "touch": _demo_touch,
    }
    selected = list(stations) if args.station == "all" else [args.station]
    for position, name in enumerate(selected):
        if position:
            print("\n" + "=" * 72 + "\n")
        print(f"--- demo station: {name.upper()} ---\n")
        stations[name](args.quick, figures)
    return 0


def _run_claims(args: argparse.Namespace) -> int:
    from repro.experiments.claims import headline_claims

    report = headline_claims(quick=not args.full)
    print(report.render())
    return 0 if report.all_hold else 1


def _run_circuit(args: argparse.Namespace) -> int:
    from repro.neuro.circuit import generate_circuit
    from repro.neuro.morphometry import circuit_morphometry

    circuit = generate_circuit(n_neurons=args.neurons, seed=args.seed)
    print(circuit_morphometry(circuit).render())
    if not args.no_figures:
        from repro.viz import render_density

        print()
        print(render_density(circuit.segments()))
    if args.out is not None:
        from repro.neuro.persistence import save_circuit

        manifest = save_circuit(circuit, args.out)
        print(f"\nexported to {manifest.parent} ({circuit.num_neurons} SWC files + manifest)")
    return 0


def _build_query(args: argparse.Namespace, engine):
    """Translate CLI flags into one declarative query object."""
    from repro.engine import KNNQuery, RangeQuery, SpatialJoin, Walkthrough
    from repro.geometry.aabb import AABB
    from repro.geometry.vec import Vec3

    if args.center is not None:
        parts = [float(v) for v in args.center.split(",")]
        if len(parts) != 3:
            raise ValueError("--center must be x,y,z")
        center = Vec3(*parts)
    else:
        center = engine.profile.world.center()

    if args.kind == "range":
        return RangeQuery(AABB.from_center_extent(center, args.extent), strategy=args.strategy)
    if args.kind == "knn":
        return KNNQuery(center, args.k, strategy=args.strategy)
    if args.kind == "join":
        return SpatialJoin(eps=args.eps, strategy=args.strategy)
    if args.kind == "walk":
        from repro.workloads.walks import branch_walk

        walk = branch_walk(
            engine.circuit,
            window_extent=args.extent,
            min_steps=args.steps,
            seed=args.seed,
        )
        return Walkthrough(tuple(walk.queries), strategy=args.strategy)
    raise AssertionError(f"unhandled query kind {args.kind!r}")


def _run_cross_join(args: argparse.Namespace) -> int:
    """``repro query join --dataset A@v3 --against B@v1 [--catalog DIR]``."""
    import repro
    from repro.errors import ReproError

    try:
        catalog = repro.Catalog(args.catalog, create=False)
        result = catalog.join(
            args.dataset,
            args.against,
            eps=args.eps,
            strategy=args.strategy,
        )
    except (ReproError, ValueError, OSError) as error:
        return _fail(error)
    print(result.describe())
    shown = result.pairs[:20]
    for a, b in shown:
        print(f"  {a} - {b}")
    if len(result.pairs) > len(shown):
        print(f"  ... {len(result.pairs) - len(shown)} more")
    return 0


def _run_query_root(args: argparse.Namespace) -> int:
    """``repro query <kind> --root DIR [--trace]`` — query a durable service.

    Opens the sharded durable root (checkpoint + WAL replay), runs one
    query through the :class:`~repro.service.ShardedEngine`, and with
    ``--trace`` prints the full nested span tree — admission, per-shard
    fan-out and per-shard engine execution, each with its kernel-batch
    count.
    """
    import repro
    from repro.engine import KNNQuery, RangeQuery, SpatialJoin
    from repro.errors import ReproError
    from repro.geometry.aabb import AABB
    from repro.geometry.vec import Vec3
    from repro.obs import trace as obs_trace

    if args.kind == "walk":
        return _fail("--root supports the range, knn and join kinds")
    service = None
    try:
        service = repro.open(args.root, sharded=True)
        print(service.describe())
        print()
        _, objects = service.snapshot_objects()
        if args.center is not None:
            parts = [float(v) for v in args.center.split(",")]
            if len(parts) != 3:
                raise ValueError("--center must be x,y,z")
            center = Vec3(*parts)
        else:
            center = AABB.union_all(o.aabb for o in objects).center()
        if args.kind == "range":
            query = RangeQuery(
                AABB.from_center_extent(center, args.extent), strategy=args.strategy
            )
        elif args.kind == "knn":
            query = KNNQuery(center, args.k, strategy=args.strategy)
        else:
            sides = tuple(objects)
            query = SpatialJoin(
                eps=args.eps, side_a=sides, side_b=sides, strategy=args.strategy
            )
        if args.trace:
            with obs_trace.start_trace("query", kind=args.kind) as root_span:
                result = service.execute(query)
            print(root_span.render())
            print()
        else:
            result = service.execute(query)
        stats = result.stats
        print(
            f"{stats.kind}: {stats.num_results} results at epoch {stats.epoch} "
            f"in {stats.elapsed_ms:.2f} ms across {stats.shards_used} shard(s)"
        )
        print()
        print(service.telemetry.render())
    except (ReproError, ValueError, OSError) as error:
        return _fail(error)
    finally:
        if service is not None:
            service.close()
    return 0


def _run_query(args: argparse.Namespace) -> int:
    import repro
    from repro.errors import ReproError

    if (args.dataset is None) != (args.against is None):
        return _fail("--dataset and --against must be given together")
    if args.dataset is not None:
        if args.kind != "join":
            return _fail("--dataset/--against apply to the join kind only")
        return _run_cross_join(args)
    if args.root is not None:
        return _run_query_root(args)
    try:
        if args.circuit is not None:
            from repro.neuro.persistence import load_circuit

            circuit = load_circuit(args.circuit)
        else:
            from repro.neuro.circuit import generate_circuit

            circuit = generate_circuit(n_neurons=args.neurons, seed=args.seed)
        engine = repro.create(circuit.segments(), circuit=circuit)
        print(engine.describe())
        print()

        query = _build_query(args, engine)
        plan = engine.explain(query)
        print(plan.render())
        if args.explain:
            return 0
        if args.trace:
            from repro.obs import trace as obs_trace

            with obs_trace.start_trace("query", kind=args.kind) as root_span:
                result = engine.execute(query)
        else:
            root_span = None
            result = engine.execute(query)
    except (ReproError, ValueError, OSError) as error:
        return _fail(error)

    if root_span is not None:
        print()
        print(root_span.render())
    print()
    print(result.render())
    if args.kind == "walk":
        metrics = result.payload
        print()
        print(
            f"walkthrough via {metrics.prefetcher}: {metrics.num_steps} steps, "
            f"{metrics.total_prefetched} prefetched, {metrics.prefetch_used} used, "
            f"{metrics.demand_misses} demand misses, "
            f"stall {metrics.total_stall_ms:.1f} ms"
        )
    print()
    print(engine.telemetry.render())
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import generate_report

    text = generate_report(quick=not args.full, progress=print)
    if args.out is not None:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"report written to {args.out}")
    else:
        print()
        print(text)
    return 0


def _run_serve_bench(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.engine.mutations import Delete, Insert, Move
    from repro.errors import ReproError
    from repro.service import (
        ShardedEngine,
        batch_balance,
        batch_makespan_ms,
        batch_total_work_ms,
    )
    from repro.utils.rng import derive_seed
    from repro.utils.tables import Table
    from repro.workloads.traffic import read_write_workload, traffic_workload

    try:
        shard_counts = sorted({int(v) for v in args.shards.split(",")})
        if any(count < 1 for count in shard_counts):
            raise ValueError("shard counts must be >= 1")
        if not 0.0 <= args.write_fraction <= 1.0:
            raise ValueError("--write-fraction must be in [0, 1]")
        if args.queries < 1:
            raise ValueError("--queries must be >= 1")
        if args.workers is not None and args.workers < 1:
            raise ValueError("--workers must be >= 1")
        if args.timeout is not None and args.timeout <= 0.0:
            raise ValueError("--timeout must be > 0")
        if args.extent <= 0.0:
            raise ValueError("--extent must be > 0")

        if args.circuit is not None:
            from repro.neuro.persistence import load_circuit

            circuit = load_circuit(args.circuit)
        else:
            from repro.neuro.circuit import generate_circuit

            circuit = generate_circuit(n_neurons=args.neurons, seed=args.seed)
        # One traffic seed, derived once, replayed at every shard count:
        # the sweep compares shard counts on the *identical* operation
        # stream, so rows differ only by the service configuration.  The
        # derivation also decouples the traffic from the circuit
        # generator, which consumes args.seed through its own sub-streams.
        workload_seed = derive_seed(args.seed, "serve-bench", "traffic")
        if args.write_fraction > 0.0:
            ops = read_write_workload(
                circuit.segments(),
                args.queries,
                write_fraction=args.write_fraction,
                extent=args.extent,
                seed=workload_seed,
            )
        else:
            ops = traffic_workload(
                circuit.segments(),
                args.queries,
                extent=args.extent,
                include_joins=not args.no_joins,
                seed=workload_seed,
            )
        n_writes = sum(isinstance(op, (Insert, Delete, Move)) for op in ops)

        table = Table(
            [
                "shards",
                "queries",
                "writes",
                "results",
                "makespan ms",
                "total work ms",
                "speedup",
                "balance",
                "wall ms",
            ],
            title="serve-bench: "
            + (
                f"{len(ops) - n_writes} queries + {n_writes} writes"
                if n_writes
                else f"{len(ops)} mixed queries"
            )
            + f" ({circuit.num_neurons} neurons)",
        )
        print(
            f"traffic seed {workload_seed} "
            f"(derived once from --seed {args.seed}; every shard count "
            "replays the identical operation stream)"
        )
        single_node_ms: float | None = None
        summary: tuple[str, str, dict[int, float]] | None = None
        wal_roots: list[Path] = []
        for count in shard_counts:
            service_kwargs = dict(
                num_shards=count,
                max_workers=args.workers,
                max_in_flight=args.max_in_flight,
                max_queued=args.max_queued,
                default_timeout_s=args.timeout,
                executor=args.executor,
            )
            if args.wal is not None:
                import repro
                from repro.durability import checkpoints_path, list_checkpoints

                wal_root = Path(args.wal)
                if len(shard_counts) > 1:
                    wal_root = wal_root / f"s{count}"
                wal_roots.append(wal_root)
                if list_checkpoints(checkpoints_path(wal_root)):
                    service = repro.open(
                        wal_root, sharded=True, circuit=circuit, **service_kwargs
                    )
                else:
                    service = repro.create(
                        circuit.segments(),
                        wal_root,
                        sharded=True,
                        circuit=circuit,
                        **service_kwargs,
                    )
            else:
                service = ShardedEngine.from_circuit(circuit, **service_kwargs)
            with service:
                start = time.perf_counter()
                results = []
                for op in ops:
                    if isinstance(op, (Insert, Delete, Move)):
                        service.apply(op)
                    else:
                        results.append(service.execute(op))
                wall_ms = (time.perf_counter() - start) * 1000.0
                # Per-shard CPU clock comes from the metrics registry, which
                # both executors feed from time.thread_time() on the worker —
                # thread and process sweeps report the same clock model.
                summary = (
                    service.describe(),
                    service.telemetry.render(),
                    service.telemetry.per_shard_cpu_ms,
                )
            makespan = batch_makespan_ms(results)
            total_work = batch_total_work_ms(results)
            if single_node_ms is None:
                single_node_ms = makespan if count == 1 else total_work
            table.add_row(
                [
                    count,
                    len(results),
                    n_writes,
                    sum(r.num_results for r in results),
                    round(makespan, 2),
                    round(total_work, 2),
                    f"{single_node_ms / makespan:.2f}x" if makespan > 0 else "-",
                    round(batch_balance(results), 3),
                    round(wall_ms, 2),
                ]
            )
        print(table.render())
        print()
        print("makespan/total work use the repo's deterministic cost model:")
        print("simulated I/O per shard; the busiest shard bounds the batch.")
        if summary is not None:
            print()
            print(summary[0])
            print(summary[1])
            if summary[2]:
                cpu_table = Table(
                    ["shard", "cpu ms"],
                    title=f"per-shard CPU clock ({args.executor} executor, "
                    "thread_time per subtask)",
                )
                for shard_id in sorted(summary[2]):
                    cpu_table.add_row([shard_id, round(summary[2][shard_id], 2)])
                print()
                print(cpu_table.render())
        if wal_roots:
            print()
            for wal_root in wal_roots:
                print(f"durable state journaled to {wal_root}")
            print(f"restore with: python -m repro recover {wal_roots[-1]} --sharded")
    except (ReproError, ValueError, OSError) as error:
        return _fail(error)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.server import ReproServer, bootstrap_replica

    try:
        catalog = None
        if args.catalog is not None:
            import repro

            catalog = repro.Catalog(args.catalog, create=False)
        service_kwargs = dict(
            max_workers=args.workers,
            max_in_flight=args.max_in_flight,
            max_queued=args.max_queued,
            default_timeout_s=args.timeout,
            slow_query_ms=args.slow_query_ms,
        )
        if args.replica_of is not None:
            host, _, port = args.replica_of.rpartition(":")
            if not host or not port.isdigit():
                raise ValueError("--replica-of must be HOST:PORT")
            service, tail = bootstrap_replica(
                host,
                int(port),
                num_shards=args.shards,
                wal_root=args.wal,
                **service_kwargs,
            )
            print(
                f"repro serve: bootstrapped replica of {host}:{port} at epoch "
                f"{service.epoch} ({service.num_objects} objects)"
            )
            server = ReproServer(
                service,
                host=args.host,
                port=args.port,
                role="replica",
                root=args.wal,
                tail=tail,
                session_queue=args.session_queue,
                catalog=catalog,
            )
        else:
            if args.circuit is not None:
                from repro.neuro.persistence import load_circuit

                circuit = load_circuit(args.circuit)
            else:
                from repro.neuro.circuit import generate_circuit

                circuit = generate_circuit(n_neurons=args.neurons, seed=args.seed)
            num_shards = args.shards if args.shards is not None else 4
            if args.wal is not None:
                import repro
                from repro.durability import checkpoints_path, list_checkpoints

                if list_checkpoints(checkpoints_path(args.wal)):
                    service = repro.open(
                        args.wal,
                        sharded=True,
                        num_shards=args.shards,
                        circuit=circuit,
                        **service_kwargs,
                    )
                else:
                    service = repro.create(
                        circuit.segments(),
                        args.wal,
                        sharded=True,
                        num_shards=num_shards,
                        circuit=circuit,
                        **service_kwargs,
                    )
            else:
                from repro.service import ShardedEngine

                service = ShardedEngine.from_circuit(
                    circuit, num_shards=num_shards, **service_kwargs
                )
            server = ReproServer(
                service,
                host=args.host,
                port=args.port,
                role="primary",
                root=args.wal,
                session_queue=args.session_queue,
                catalog=catalog,
            )
        return server.run()
    except (ReproError, ValueError, OSError) as error:
        return _fail(error)


def _connect_help() -> str:
    return (
        "commands:\n"
        "  range X,Y,Z EXTENT       objects in a window around a centre\n"
        "  knn X,Y,Z K              K nearest objects to a point\n"
        "  join EPS                 distance self-join of the live dataset\n"
        "  insert UID X,Y,Z EXTENT  insert a box object\n"
        "  delete UID               delete an object\n"
        "  move UID X,Y,Z EXTENT    move an object\n"
        "  stats [MIN_EPOCH]        service snapshot (optionally wait for an epoch)\n"
        "  metrics                  Prometheus scrape of the server's metrics registry\n"
        "  slowlog                  the server's ring-buffer slow-query log\n"
        "  checkpoint               write a durable checkpoint (primary + --wal)\n"
        "  promote                  failover: make this replica the primary\n"
        "  shutdown                 drain and stop the server\n"
        "  quit                     close this client"
    )


def _connect_command(client, line: str) -> str:
    """Execute one ``repro connect`` command line; return the output."""
    from repro.engine.mutations import Delete, Insert, Move
    from repro.engine.queries import KNNQuery, RangeQuery
    from repro.geometry.aabb import AABB
    from repro.geometry.vec import Vec3
    from repro.objects import BoxObject

    def vec(text: str) -> Vec3:
        parts = [float(v) for v in text.split(",")]
        if len(parts) != 3:
            raise ValueError("expected X,Y,Z")
        return Vec3(*parts)

    words = line.split()
    command, rest = words[0], words[1:]
    if command == "help":
        return _connect_help()
    if command == "range":
        box = AABB.from_center_extent(vec(rest[0]), float(rest[1]))
        result = client.query(RangeQuery(box))
        return (
            f"epoch {result.epoch}: {len(result.payload)} objects in "
            f"{result.elapsed_ms:.2f} ms"
        )
    if command == "knn":
        result = client.query(KNNQuery(vec(rest[0]), int(rest[1])))
        nearest = ", ".join(f"{uid}@{dist:.2f}" for uid, dist in result.payload[:8])
        return f"epoch {result.epoch}: [{nearest}]"
    if command == "join":
        result = client.self_join(float(rest[0]))
        return (
            f"epoch {result.epoch}: {len(result.payload)} pairs in "
            f"{result.elapsed_ms:.2f} ms"
        )
    if command in ("insert", "move"):
        uid = int(rest[0])
        box = AABB.from_center_extent(vec(rest[1]), float(rest[2]))
        mutation = (
            Insert(BoxObject(uid=uid, box=box))
            if command == "insert"
            else Move(uid, BoxObject(uid=uid, box=box))
        )
        return f"applied as epoch {client.mutate([mutation])}"
    if command == "delete":
        return f"applied as epoch {client.mutate([Delete(int(rest[0]))])}"
    if command == "stats":
        reply = client.stats(min_epoch=int(rest[0]) if rest else None)
        admission = reply["admission"]
        return (
            f"role={reply['role']} epoch={reply['epoch']} "
            f"objects={reply['num_objects']} shards={reply['num_shards']} "
            f"in_flight={admission['in_flight']} queued={admission['queued']} "
            f"rejected={admission['rejected']}"
        )
    if command == "metrics":
        return client.metrics().rstrip("\n")
    if command == "slowlog":
        reply = client.slowlog()
        if not reply["enabled"]:
            return "slow-query log disabled (start the server with --slow-query-ms)"
        if not reply["entries"]:
            return "slow-query log is empty"
        lines = []
        for entry in reply["entries"]:
            extras = " ".join(
                f"{key}={value}"
                for key, value in entry.items()
                if key not in ("kind", "elapsed_ms", "ts")
            )
            lines.append(
                f"{entry['kind']}: {entry['elapsed_ms']:.2f} ms"
                + (f"  {extras}" if extras else "")
            )
        return "\n".join(lines)
    if command == "checkpoint":
        reply = client.checkpoint()
        return f"checkpointed epoch {reply['epoch']} at {reply['path']}"
    if command == "promote":
        return f"promoted to primary at epoch {client.promote()['epoch']}"
    if command == "shutdown":
        client.shutdown()
        return "server draining"
    raise ValueError(f"unknown command {command!r} (try 'help')")


def _run_connect(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.server import Client

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        return _fail("address must be HOST:PORT")
    try:
        client = Client(host, int(port), timeout_s=args.timeout)
    except OSError as error:
        return _fail(f"cannot connect to {args.address}: {error}")
    with client:
        welcome = client.hello(name="repro-connect")
        print(
            f"connected to {args.address}: role={welcome['role']} "
            f"epoch={welcome['epoch']} objects={welcome['num_objects']} "
            f"shards={welcome['num_shards']} protocol v{welcome['protocol']}"
        )
        status = 0
        if args.cmd is not None:
            lines = list(args.cmd)
        else:
            print(_connect_help())
            lines = None
        while True:
            if lines is not None:
                if not lines:
                    break
                line = lines.pop(0)
                print(f"> {line}")
            else:
                try:
                    line = input("> ")
                except EOFError:
                    break
            line = line.strip()
            if not line:
                continue
            if line == "quit":
                break
            try:
                print(_connect_command(client, line))
            except (ReproError, ValueError, IndexError) as error:
                import sys

                print(f"error: {error}", file=sys.stderr)
                status = 1
        return status


def _run_recover(args: argparse.Namespace) -> int:
    import repro
    from repro.engine import RangeQuery
    from repro.errors import ReproError
    from repro.geometry.aabb import AABB

    engine = None
    try:
        engine = repro.open(
            args.dir,
            sharded=args.sharded,
            durable=False,
            at_epoch=args.at_epoch,
            num_shards=args.shards if args.sharded else None,
        )
        print(engine.last_recovery.describe())
        print(engine.describe())
        if not args.no_verify:
            window = AABB.from_center_extent(
                engine.profile.world.center(), args.extent
            )
            result = engine.execute(RangeQuery(window))
            expected = sorted(
                o.uid for o in engine.objects if o.aabb.intersects(window)
            )
            exact = sorted(result.payload) == expected
            print()
            print(
                f"validation query: {len(result.payload)} objects in a "
                f"{args.extent:g} um window — {'exact' if exact else 'MISMATCH'}"
            )
            if not exact:
                return 1
    except (ReproError, OSError) as error:
        return _fail(error)
    finally:
        if args.sharded and engine is not None:
            engine.close()  # shut the recovered service's worker pool down
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    import repro
    from repro.errors import ReproError

    try:
        # Only 'create' may initialise a catalog root; the read/modify
        # commands refuse to invent one in an arbitrary directory.
        catalog = repro.Catalog(
            args.catalog, create=args.datasets_command == "create"
        )
        if args.datasets_command == "list":
            infos = catalog.datasets()
            if not infos:
                print("catalog is empty")
            for info in infos:
                print(info.describe())
            return 0
        if args.datasets_command == "create":
            if args.circuit is not None:
                from repro.neuro.persistence import load_circuit

                circuit = load_circuit(args.circuit)
            else:
                from repro.neuro.circuit import generate_circuit

                circuit = generate_circuit(n_neurons=args.neurons, seed=args.seed)
            engine = catalog.create(args.name, circuit.segments())
            try:
                print(
                    f"dataset {args.name}: {len(engine.objects)} objects at "
                    f"epoch {engine.epoch} under {catalog.dataset_root(args.name)}"
                )
            finally:
                engine.close()
            return 0
        if args.datasets_command == "tag":
            epoch = catalog.tag(args.name, args.tag, epoch=args.epoch)
            print(f"tag {args.name}@{args.tag} -> epoch {epoch}")
            return 0
        if args.datasets_command == "untag":
            epoch = catalog.untag(args.name, args.tag)
            print(f"untagged {args.name}@{args.tag} (pinned epoch {epoch})")
            return 0
        if args.datasets_command == "lineage":
            for record in catalog.lineage(args.name, at_epoch=args.at_epoch):
                print(record.describe())
            return 0
        if args.datasets_command == "diff":
            print(catalog.diff(args.ref_a, args.ref_b).render())
            return 0
        if args.datasets_command == "prune":
            print(catalog.prune(args.name).describe())
            return 0
    except (ReproError, ValueError, OSError) as error:
        return _fail(error)
    raise AssertionError(f"unhandled datasets command {args.datasets_command!r}")


def _run_bench(args: argparse.Namespace) -> int:
    from repro import bench

    argv = ["--json", args.json, "--max-regression", str(args.max_regression)]
    if args.smoke:
        argv.append("--smoke")
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    if args.modes is not None:
        argv.extend(["--modes", args.modes])
    if args.only is not None:
        argv.extend(["--only", args.only])
    return bench.main(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "claims":
        return _run_claims(args)
    if args.command == "circuit":
        return _run_circuit(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "serve-bench":
        return _run_serve_bench(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "connect":
        return _run_connect(args)
    if args.command == "recover":
        return _run_recover(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "datasets":
        return _run_datasets(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
