"""Front-door constructors: :func:`repro.create` and :func:`repro.open`.

One constructor family replaces the four-way maze of ``SpatialEngine(...)``,
``DurableEngine.create/open``, ``recover_sharded`` and ``durable_sharded``:

* :func:`create` builds a **fresh** engine over a dataset — in memory when
  ``root`` is ``None``, durable (WAL + base checkpoint) when a directory is
  given, sharded when ``sharded=True``.
* :func:`open` attaches to an **existing** durability directory — writable
  with the WAL reattached by default, read-only (optionally time-travelled
  to ``at_epoch``) with ``durable=False``.

The old entry points remain as thin shims that emit ``DeprecationWarning``
and delegate here.

>>> engine = repro.create(circuit.segments())                   # in-memory
>>> durable = repro.create(circuit.segments(), "model_dir")     # + WAL
>>> service = repro.create(objs, "svc_dir", sharded=True, num_shards=4)
>>> durable = repro.open("model_dir")                           # pre-crash epoch
>>> past = repro.open("model_dir", durable=False, at_epoch=3)   # time-travel
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.errors import DurabilityError
from repro.objects import SpatialObject

__all__ = ["create", "open"]


def create(
    objects: Sequence[SpatialObject],
    root: str | Path | None = None,
    *,
    sharded: bool = False,
    num_shards: int | None = None,
    wal_kwargs: dict[str, Any] | None = None,
    **engine_kwargs: Any,
) -> Any:
    """Build a fresh engine over ``objects``.

    ``root=None`` (the default) gives an in-memory engine: a
    :class:`~repro.engine.SpatialEngine`, or a
    :class:`~repro.service.ShardedEngine` when ``sharded=True``.  With a
    directory, the engine is durable — a base checkpoint is written at epoch
    0 and every mutation batch is journaled to the write-ahead log before it
    is acknowledged.  The directory must hold no prior state; resume an
    existing one with :func:`open`.  Extra keyword arguments pass through to
    the underlying engine (``page_capacity=...``, ``circuit=...``, the
    sharded service's pool knobs, ...).
    """
    if root is None:
        if wal_kwargs is not None:
            raise DurabilityError("wal_kwargs requires a durability root")
        if sharded:
            from repro.service.sharded import ShardedEngine

            return ShardedEngine(
                objects,
                num_shards=4 if num_shards is None else num_shards,
                **engine_kwargs,
            )
        if num_shards is not None:
            raise DurabilityError("num_shards requires sharded=True")
        from repro.engine.engine import SpatialEngine

        return SpatialEngine(objects, **engine_kwargs)

    root = Path(root)
    if sharded:
        from repro.durability.checkpoint import list_checkpoints
        from repro.durability.recovery import _durable_sharded, checkpoints_path

        if list_checkpoints(checkpoints_path(root)):
            raise DurabilityError(f"{root} already holds checkpoints; use repro.open")
        return _durable_sharded(
            root,
            objects,
            num_shards=num_shards,
            wal_kwargs=wal_kwargs,
            **engine_kwargs,
        )
    if num_shards is not None:
        raise DurabilityError("num_shards requires sharded=True")
    from repro.durability.engine import _create_durable

    return _create_durable(root, objects, wal_kwargs=wal_kwargs, **engine_kwargs)


def open(
    root: str | Path,
    *,
    sharded: bool = False,
    durable: bool = True,
    at_epoch: int | None = None,
    num_shards: int | None = None,
    wal_kwargs: dict[str, Any] | None = None,
    **engine_kwargs: Any,
) -> Any:
    """Attach to an existing durability directory.

    ``durable=True`` (the default) returns a *writable* engine with the WAL
    reattached: a :class:`~repro.durability.DurableEngine`, or a journaling
    :class:`~repro.service.ShardedEngine` when ``sharded=True`` — recovered
    to the exact pre-crash epoch, appending where it left off.

    ``durable=False`` returns a *read-only* recovered engine: no WAL handle
    is taken, and ``at_epoch`` may time-travel to any epoch from the oldest
    checkpoint through the durable tip.  The recovery record (checkpoint
    used, batches replayed, replay time) is attached to the returned engine
    as ``engine.last_recovery``.

    ``num_shards`` (sharded only) re-tiles the recovered dataset; the
    default keeps the checkpoint manifest's shard spec.
    """
    root = Path(root)
    if durable:
        if at_epoch is not None:
            if sharded:
                raise DurabilityError(
                    "at_epoch opens of a sharded service are read-only; "
                    "use repro.open(root, sharded=True, durable=False, "
                    f"at_epoch={at_epoch})"
                )
            # The single-engine path accepts at_epoch == durable tip (a
            # no-op bound) and refuses anything older, inside _open_durable.
        if sharded:
            from repro.durability.checkpoint import list_checkpoints
            from repro.durability.recovery import _durable_sharded, checkpoints_path

            if not list_checkpoints(checkpoints_path(root)):
                raise DurabilityError(f"{root} holds no checkpoints; use repro.create")
            return _durable_sharded(
                root,
                None,
                num_shards=num_shards,
                wal_kwargs=wal_kwargs,
                **engine_kwargs,
            )
        from repro.durability.engine import _open_durable

        return _open_durable(
            root, at_epoch=at_epoch, wal_kwargs=wal_kwargs, **engine_kwargs
        )

    if wal_kwargs is not None:
        raise DurabilityError("wal_kwargs requires durable=True")
    from repro.durability.recovery import _recover_sharded, recover_engine

    if sharded:
        recovery = _recover_sharded(
            root, at_epoch=at_epoch, num_shards=num_shards, **engine_kwargs
        )
    else:
        if num_shards is not None:
            raise DurabilityError("num_shards requires sharded=True")
        recovery = recover_engine(root, at_epoch=at_epoch, **engine_kwargs)
    engine = recovery.engine
    engine.last_recovery = recovery
    return engine
