"""Admission control: bounded concurrency with backpressure.

A service that accepts every request degrades for everyone at once; one
that bounds its work degrades only for the overflow.  The controller
enforces two limits:

* ``max_in_flight`` — queries executing concurrently,
* ``max_queued`` — admitted-but-waiting queries.

A query beyond both limits is rejected *immediately* with
:class:`~repro.errors.ServiceOverloadError` — the caller gets a clean
signal to back off instead of a silently growing queue (and, crucially for
the stress tests, instead of a deadlock).  Waiting queries are bounded in
time too: ``queue_timeout_s`` converts an over-long wait into the same
rejection.

The controller is a plain condition-variable monitor, safe to hammer from
any number of threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ServiceError, ServiceOverloadError

__all__ = ["AdmissionController", "AdmissionSnapshot"]


@dataclass(frozen=True)
class AdmissionSnapshot:
    """Point-in-time counters of one :class:`AdmissionController`."""

    in_flight: int
    queued: int
    admitted: int
    rejected: int
    timed_out_waiting: int

    @property
    def submitted(self) -> int:
        return self.admitted + self.rejected + self.timed_out_waiting


class AdmissionController:
    """Gate queries behind an in-flight limit and a bounded wait queue.

    >>> gate = AdmissionController(max_in_flight=2, max_queued=4)
    >>> wait_ms = gate.admit()   # may raise ServiceOverloadError
    >>> try:
    ...     ...                  # execute the query
    ... finally:
    ...     gate.release()
    """

    def __init__(
        self,
        max_in_flight: int = 4,
        max_queued: int = 16,
        queue_timeout_s: float | None = 30.0,
    ) -> None:
        if max_in_flight < 1:
            raise ServiceError("max_in_flight must be >= 1")
        if max_queued < 0:
            raise ServiceError("max_queued must be >= 0")
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ServiceError("queue_timeout_s must be positive (or None)")
        self.max_in_flight = max_in_flight
        self.max_queued = max_queued
        self.queue_timeout_s = queue_timeout_s
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._admitted = 0
        self._rejected = 0
        self._timed_out_waiting = 0

    def admit(self) -> float:
        """Block until a slot frees up; return the wait in milliseconds.

        Raises :class:`ServiceOverloadError` when the wait queue is already
        full (immediately) or when the wait exceeds ``queue_timeout_s``.
        """
        start = time.perf_counter()
        with self._cond:
            if self._in_flight < self.max_in_flight and self._queued == 0:
                self._in_flight += 1
                self._admitted += 1
                return 0.0
            if self._queued >= self.max_queued:
                self._rejected += 1
                raise ServiceOverloadError(
                    f"service overloaded: {self._in_flight} in flight, "
                    f"{self._queued} queued (max_queued={self.max_queued})"
                )
            self._queued += 1
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = None
                    if self.queue_timeout_s is not None:
                        remaining = self.queue_timeout_s - (time.perf_counter() - start)
                        if remaining <= 0:
                            self._timed_out_waiting += 1
                            # Pass any notification we may have swallowed on
                            # to the next waiter before giving up.
                            self._cond.notify()
                            raise ServiceOverloadError(
                                f"gave up after {self.queue_timeout_s:.3f}s in the "
                                "admission queue"
                            )
                    self._cond.wait(remaining)
            finally:
                self._queued -= 1
            self._in_flight += 1
            self._admitted += 1
        return (time.perf_counter() - start) * 1000.0

    def release(self) -> None:
        """Return an execution slot; wakes one waiting query."""
        with self._cond:
            if self._in_flight <= 0:
                raise ServiceError("release() without a matching admit()")
            self._in_flight -= 1
            self._cond.notify()

    def snapshot(self) -> AdmissionSnapshot:
        with self._cond:
            return AdmissionSnapshot(
                in_flight=self._in_flight,
                queued=self._queued,
                admitted=self._admitted,
                rejected=self._rejected,
                timed_out_waiting=self._timed_out_waiting,
            )
