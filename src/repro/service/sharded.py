"""The :class:`ShardedEngine` — a concurrent query service over engine shards.

One dataset, spatially partitioned into N Hilbert-order shards, one
:class:`~repro.engine.SpatialEngine` per shard, one real
:class:`~concurrent.futures.ThreadPoolExecutor` fanning queries across
them.  The service front adds what a single engine does not have: admission
control with backpressure, per-query deadlines, and thread-safe telemetry.

Consistency contract
--------------------
Every answer is *exactly* the single-engine answer, canonically ordered:

* **range** — every object lives in exactly one shard, so the union of
  per-shard hits has no duplicates and misses nothing; merged as sorted
  uids.
* **knn** — each touched shard returns its own ``k`` best; a global top-k
  merge over ``(distance, uid)`` keeps the true answer (a shard can only
  be wrong by *offering too much*, never too little, since its k-th best
  bounds anything it withheld).
* **join** — the probe side is split across shards and every chunk joins
  against the *full* build side, so each qualifying pair is found exactly
  once, in the shard that owns its B object; no boundary pair is lost, no
  pair is duplicated.  Merged as sorted pairs.
* **walk** — each window is answered as a sharded range query; the
  payload is one sorted uid list per window.

Concurrency contract
--------------------
A shard is a single-threaded engine (its lazily built indexes and buffer
pool are guarded by a per-shard lock); parallelism comes from having many
shards, exactly like shard-per-core designs.  Client threads may call
:meth:`execute` / :meth:`query_many` freely — admission control bounds the
in-flight work and rejects (never deadlocks) beyond the configured queue.

Live-data contract (epoch snapshots)
------------------------------------
Mutations (:class:`~repro.engine.Insert` / ``Delete`` / ``Move``) flow
through :meth:`apply_many`, which routes each one to its owning shard —
deletes and moves by the uid-ownership map, inserts by the Hilbert key
interval each shard owns — and publishes the batch as a new *epoch*: an
immutable shard view built copy-on-write (only touched shards are rebuilt;
untouched shards keep their warm engines).  Every query captures exactly
one view for its whole fan-out, so in-flight readers always observe a
consistent whole-epoch snapshot — never a torn mix of pre- and
post-mutation shards — and ``result.stats.epoch`` names which one.
Writers never block readers; concurrent writers serialise on a single
mutation lock.  When a batch drains a shard empty, or drifts shard sizes
past ``rebalance_threshold`` times the balanced share, the whole dataset
is re-tiled into fresh Hilbert shards before the epoch is published.

>>> service = ShardedEngine.generate(n_neurons=30, num_shards=4)
>>> hits = service.execute(RangeQuery(window))
>>> hits.payload == sorted(hits.payload)   # canonical ordering
True
>>> service.apply_many([Insert(new_segment), Delete(stale_uid)])
>>> service.telemetry.render()             # thread-safe aggregate
"""

from __future__ import annotations

import contextvars
import heapq
import time
from concurrent.futures import FIRST_EXCEPTION, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from threading import Condition, Lock
from typing import Any, Callable, Sequence

from repro import kernels
from repro.core.touch.parallel import build_touch_tree, probe_shard
from repro.core.touch.stats import segment_touch_refine
from repro.engine.engine import SpatialEngine
from repro.engine.executors import run_join, timed
from repro.engine.mutations import (
    Delete,
    Insert,
    Move,
    Mutation,
    MutationResult,
    MutationStats,
    validate_finite_geometry,
)
from repro.engine.planner import DatasetProfile, Planner
from repro.engine.queries import KNNQuery, Query, RangeQuery, SpatialJoin, Walkthrough
from repro.engine.stats import EngineStats
from repro.errors import (
    EngineError,
    ServiceError,
    ServiceOverloadError,
    ServiceTimeoutError,
)
from repro.geometry.aabb import AABB
from repro.geometry.segment import Segment
from repro.hilbert.curve import HilbertEncoder3D
from repro.neuro.circuit import Circuit, generate_circuit
from repro.neuro.persistence import load_circuit
from repro.obs import trace
from repro.obs.slowlog import SlowQueryLog
from repro.objects import BoxObject, SpatialObject
from repro.service.admission import AdmissionController
from repro.service.procpool import ProcessShardExecutor
from repro.service.sharding import ShardSpec, hilbert_shards, round_robin_split
from repro.service.stats import ServiceResult, ServiceStats, ServiceTelemetry, ShardWork

__all__ = ["ShardedEngine"]


@dataclass
class _EngineShard:
    """One shard: its spec, its engine, and the lock that serialises it."""

    spec: ShardSpec
    engine: SpatialEngine
    lock: Lock = field(default_factory=Lock)

    def execute_locked(self, query: Query):
        with self.lock:
            return self.engine.execute(query)


@dataclass(frozen=True)
class _ShardView:
    """One epoch's immutable shard set — what a query runs against.

    A view is published atomically (one reference assignment) and never
    mutated afterwards; readers that captured it keep a consistent
    whole-epoch snapshot no matter how many epochs writers publish while
    the query is in flight.  ``owner`` maps every live uid to its shard
    and ``encoder`` quantises insert positions onto the Hilbert curve the
    shard key intervals were cut from (``None`` for a single shard).
    """

    epoch: int
    shards: tuple[_EngineShard, ...]
    owner: dict[int, int]
    encoder: HilbertEncoder3D | None
    #: Process-mode only: the shared-memory publication backing this view
    #: (``None`` on thread-mode services).  Bound to the view so a reader
    #: capturing the view atomically captures the matching segment set.
    publication: Any = None

    @property
    def num_objects(self) -> int:
        return len(self.owner)


class ShardedEngine:
    """A concurrent spatial query service over N engine shards.

    Parameters
    ----------
    objects:
        The dataset, partitioned once into ``num_shards`` Hilbert tiles.
    circuit:
        Optional source circuit (enables default synapse-discovery joins).
    num_shards:
        Shard count; clamped to the dataset size so no shard is empty.
    max_workers:
        Worker threads in the pool (default: one per shard).
    max_in_flight, max_queued, queue_timeout_s:
        Admission-control knobs (see
        :class:`~repro.service.admission.AdmissionController`).
    default_timeout_s:
        Per-query deadline applied when :meth:`execute` is not given one;
        ``None`` disables deadlines.
    rebalance_threshold:
        Write-path drift bound: after a mutation batch, if the largest
        shard holds more than this multiple of the balanced per-shard
        share (or any shard drained empty), the whole dataset is re-tiled
        into fresh Hilbert shards before the new epoch is published.
    wal:
        Optional :class:`~repro.durability.WriteAheadLog`.  When attached,
        every validated mutation batch is appended to the log *before* its
        epoch is published (write-ahead), so
        :func:`~repro.durability.recover_sharded` can rebuild the service
        at the exact pre-crash epoch.  Reads are never logged.
    initial_epoch:
        Epoch of the first published view (used by recovery to resume the
        epoch sequence where a checkpoint left it; defaults to 0).
    executor:
        ``"thread"`` (default) fans shard subtasks out on a
        :class:`~concurrent.futures.ThreadPoolExecutor`; ``"process"``
        publishes each shard's arena columns into
        ``multiprocessing.shared_memory`` and fans out to worker
        *processes* that map them — no GIL contention between shards.
        Results are byte-identical across the two modes (the differential
        suite pins this); process mode refuses opaque objects, whose
        Python payloads cannot cross the process boundary by columns.
    mp_start:
        Process-mode start method (``"fork"`` / ``"spawn"``); ``None``
        picks ``fork`` where available.  See
        :class:`~repro.service.procpool.ProcessShardExecutor`.
    slow_query_ms:
        Record every query whose wall time crosses this threshold into
        the ring-buffer :attr:`slow_log` (queryable over the wire via the
        ``slowlog`` frame); ``None`` disables recording.
    engine_kwargs:
        Forwarded to every per-shard :class:`SpatialEngine`
        (``page_capacity``, ``pool_capacity``, ``disk_params``, ...).
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        circuit: Circuit | None = None,
        num_shards: int = 4,
        max_workers: int | None = None,
        max_in_flight: int | None = None,
        max_queued: int = 16,
        queue_timeout_s: float | None = 30.0,
        default_timeout_s: float | None = None,
        hilbert_order: int = 10,
        rebalance_threshold: float = 4.0,
        wal: Any | None = None,
        initial_epoch: int = 0,
        executor: str = "thread",
        mp_start: str | None = None,
        slow_query_ms: float | None = None,
        **engine_kwargs: Any,
    ) -> None:
        if not objects:
            raise ServiceError("ShardedEngine needs a non-empty dataset")
        if rebalance_threshold < 1.0:
            raise ServiceError("rebalance_threshold must be >= 1.0")
        if initial_epoch < 0:
            raise ServiceError("initial_epoch must be >= 0")
        if executor not in ("thread", "process"):
            raise ServiceError(
                f"unknown executor mode {executor!r}; choose 'thread' or 'process'"
            )
        self.circuit = circuit
        self.default_timeout_s = default_timeout_s
        self._engine_kwargs = dict(engine_kwargs)
        self._shards_requested = num_shards
        self._hilbert_order = hilbert_order
        self.rebalance_threshold = rebalance_threshold
        self.wal = wal
        self.executor = executor
        self._mutation_lock = Lock()
        self._procpool: ProcessShardExecutor | None = None
        view = self._build_view(list(objects), epoch=initial_epoch)
        if executor == "process":
            self._procpool = ProcessShardExecutor(
                max_workers=max(len(view.shards), num_shards),
                mp_start=mp_start,
                engine_kwargs=self._engine_kwargs,
            )
            try:
                view = self._publish_view(view, previous=None)
            except BaseException:
                self._procpool.close()
                raise
        self._view = view
        page_capacity = self._view.shards[0].engine.page_capacity
        self.profile = DatasetProfile.from_objects(self.objects, page_capacity)
        self.planner = Planner(self.profile)
        # Size the pool and admission defaults by the *requested* shard
        # count, not the (possibly dataset-clamped) initial one: a small
        # dataset that grows under inserts and rebalances up to the
        # requested tiling must not stay pinned to a one-thread fan-out.
        default_width = max(len(self._view.shards), num_shards)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers if max_workers is not None else default_width,
            thread_name_prefix="repro-shard",
        )
        self.admission = AdmissionController(
            max_in_flight=(
                max_in_flight if max_in_flight is not None else default_width
            ),
            max_queued=max_queued,
            queue_timeout_s=queue_timeout_s,
        )
        self.telemetry = ServiceTelemetry()
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms)
        self._epoch_listeners: list[Callable[[int, Sequence[Mutation]], None]] = []
        self._lifecycle = Condition()
        self._active = 0
        self._closed = False

    def _build_view(self, objects: Sequence[SpatialObject], epoch: int) -> _ShardView:
        """Tile ``objects`` into fresh Hilbert shards as epoch ``epoch``."""
        specs = hilbert_shards(objects, self._shards_requested, order=self._hilbert_order)
        shards = tuple(
            _EngineShard(
                spec=spec, engine=SpatialEngine(spec.objects, **self._engine_kwargs)
            )
            for spec in specs
        )
        owner = {o.uid: spec.shard_id for spec in specs for o in spec.objects}
        if len(owner) != len(objects):
            raise ServiceError("dataset contains duplicate object uids")
        encoder = None
        if len(specs) > 1:
            world = AABB.union_all(o.aabb for o in objects)
            encoder = HilbertEncoder3D(world, order=self._hilbert_order)
        return _ShardView(epoch=epoch, shards=shards, owner=owner, encoder=encoder)

    def _publish_view(
        self, view: _ShardView, previous: _ShardView | None
    ) -> _ShardView:
        """Attach a shared-memory publication to ``view`` (process mode).

        Shards carried over from ``previous`` unchanged (same
        :class:`_EngineShard` instance — the copy-on-write fast path for
        untouched shards) reuse the previous publication's segment; every
        other shard packs a fresh one.  Thread-mode services return the
        view untouched.
        """
        if self._procpool is None:
            return view
        prev_shards: dict[int, _EngineShard] = {}
        if previous is not None and previous.publication is not None:
            prev_shards = {s.spec.shard_id: s for s in previous.shards}
        arenas: dict[int, Any] = {}
        for shard in view.shards:
            shard_id = shard.spec.shard_id
            if prev_shards.get(shard_id) is shard:
                arenas[shard_id] = None  # carry the published segment
            else:
                arenas[shard_id] = shard.engine.arena
        previous_pub = previous.publication if previous is not None else None
        publication = self._procpool.publish(arenas, previous_pub)
        return replace(view, publication=publication)

    def _pin_view(self) -> _ShardView:
        """Capture the current view, pinned for one query's whole fan-out.

        Thread mode just reads the reference.  Process mode additionally
        acquires the view's publication so a concurrent mutation cannot
        unlink its segments mid-query; if the publication was already
        dropped (we lost the race to a writer), re-read and retry — the
        newer view's publication is live.
        """
        view = self._view
        if self._procpool is None:
            return view
        while True:
            publication = view.publication
            if publication is None or self._procpool.acquire(publication):
                return view
            current = self._view
            if current is view:
                # Not superseded yet still unacquirable: the executor is
                # closing underneath us.
                raise ServiceError("service is closed")
            view = current

    def _unpin_view(self, view: _ShardView) -> None:
        if self._procpool is not None and view.publication is not None:
            self._procpool.release(view.publication)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: Circuit, **kwargs: Any) -> "ShardedEngine":
        """Bind a service to a circuit's flattened segment dataset."""
        return cls(circuit.segments(), circuit=circuit, **kwargs)

    @classmethod
    def from_objects(
        cls, objects: Sequence[SpatialObject], **kwargs: Any
    ) -> "ShardedEngine":
        """Bind a service to an arbitrary set of spatial objects."""
        return cls(objects, **kwargs)

    @classmethod
    def from_engine(cls, engine: SpatialEngine, **kwargs: Any) -> "ShardedEngine":
        """Shard an existing single engine's dataset (same engine knobs)."""
        merged = {
            "page_capacity": engine.page_capacity,
            "pool_capacity": engine.pool_capacity,
            "disk_params": engine.disk_params,
            "seed_fanout": engine.seed_fanout,
        }
        merged.update(kwargs)
        return cls(engine.objects, circuit=engine.circuit, **merged)

    @classmethod
    def generate(
        cls, n_neurons: int = 40, seed: int = 0, **kwargs: Any
    ) -> "ShardedEngine":
        """Generate a synthetic circuit and bind a service to it."""
        return cls.from_circuit(generate_circuit(n_neurons=n_neurons, seed=seed), **kwargs)

    @classmethod
    def open(cls, path: str | Path, **kwargs: Any) -> "ShardedEngine":
        """Open a circuit saved with :func:`repro.save_circuit`."""
        return cls.from_circuit(load_circuit(path), **kwargs)

    # -- lifecycle -------------------------------------------------------------
    @property
    def shards(self) -> tuple[_EngineShard, ...]:
        """The current epoch's shards (an immutable, consistent snapshot)."""
        return self._view.shards

    @property
    def epoch(self) -> int:
        """The epoch of the currently published view (0 until first write)."""
        return self._view.epoch

    @property
    def objects(self) -> list[SpatialObject]:
        """The live dataset, concatenated shard by shard (one epoch's view)."""
        return [o for shard in self._view.shards for o in shard.spec.objects]

    @property
    def num_shards(self) -> int:
        return len(self._view.shards)

    @property
    def num_objects(self) -> int:
        return self._view.num_objects

    def warm(self) -> "ShardedEngine":
        """Build every shard's indexes up front (benchmarks, latency SLOs).

        In process mode this warms the *workers*: it spawns them, maps the
        current publication and builds each shard's engine where the
        queries will actually run, by executing one full-shard range per
        shard.  Thread mode warms the in-process shard engines.
        """
        if self._procpool is not None:
            view = self._pin_view()
            try:
                backend = kernels.active_backend()
                futures = [
                    self._procpool.submit_query(
                        view.publication,
                        shard.spec.shard_id,
                        RangeQuery(shard.spec.mbr),
                        backend,
                    )
                    for shard in view.shards
                ]
                for future in futures:
                    future.result()
            finally:
                self._unpin_view(view)
            return self
        for shard in self._view.shards:
            with shard.lock:
                shard.engine.flat_index()
                shard.engine.object_rtree()
                shard.engine.buffer_pool()
        return self

    def _begin_work(self) -> None:
        """Count one query or mutation as in flight (refused once closed)."""
        with self._lifecycle:
            if self._closed:
                raise ServiceError("service is closed")
            self._active += 1

    def _end_work(self) -> None:
        with self._lifecycle:
            self._active -= 1
            if self._active == 0:
                self._lifecycle.notify_all()

    def close(self) -> None:
        """Drain in-flight work, shut the pool down, flush and close the WAL.

        Closing is graceful: new queries and mutations are refused
        immediately (:class:`ServiceError`), but everything already past
        admission — including queries still waiting in the admission queue
        — runs to completion before the pool is torn down.  The attached
        WAL is flushed and closed last, so a clean shutdown leaves every
        acknowledged batch durable and never abandons a query mid-fan-out.
        Idempotent and safe to call concurrently with queries from other
        threads.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            while self._active:
                self._lifecycle.wait()
        self._pool.shutdown(wait=True)
        if self._procpool is not None:
            # Shuts the worker processes down and unlinks every
            # shared-memory segment this service ever published — the
            # parent owns them all, so nothing survives in /dev/shm even
            # if workers were SIGKILL'd mid-task.
            self._procpool.close()
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def describe(self) -> str:
        view = self._view
        bound = f"circuit ({self.circuit.num_neurons} neurons)" if self.circuit else "objects"
        sizes = ", ".join(str(len(s.spec)) for s in view.shards)
        return (
            f"ShardedEngine over {view.num_objects:,} objects from {bound}; "
            f"{len(view.shards)} Hilbert shards ({sizes} objects) at epoch "
            f"{view.epoch}, admission {self.admission.max_in_flight} in flight / "
            f"{self.admission.max_queued} queued"
        )

    # -- epoch observation (WAL shipping, replication) -------------------------
    def snapshot_objects(self) -> tuple[int, list[SpatialObject]]:
        """One epoch's ``(epoch, objects)`` — a consistent bootstrap snapshot.

        Both values come from a single captured view, so the object list
        is exactly the dataset at that epoch no matter how many writers
        publish while the list is being built.  This is what a replica
        bootstraps from before tailing the mutation stream.
        """
        view = self._view
        return view.epoch, [o for shard in view.shards for o in shard.spec.objects]

    def add_epoch_listener(
        self, listener: Callable[[int, Sequence[Mutation]], None]
    ) -> None:
        """Call ``listener(epoch, mutations)`` after each epoch publishes.

        Listeners run on the writing thread, under the mutation lock —
        exactly once per published epoch, in epoch order, after the WAL
        append (an acked-then-streamed batch is always durable first).
        Keep them fast and never call back into the service from one.
        """
        self._epoch_listeners.append(listener)

    def remove_epoch_listener(
        self, listener: Callable[[int, Sequence[Mutation]], None]
    ) -> None:
        """Detach a listener added by :meth:`add_epoch_listener` (idempotent)."""
        if listener in self._epoch_listeners:
            self._epoch_listeners.remove(listener)

    # -- mutation (live data: epoch-versioned writes) --------------------------
    def apply(self, mutation: Mutation) -> MutationResult:
        """Apply one :class:`Insert` / :class:`Delete` / :class:`Move`."""
        return self.apply_many((mutation,))

    def apply_many(self, mutations: Sequence[Mutation]) -> MutationResult:
        """Route, apply and publish a mutation batch as one new epoch.

        Deletes and moves go to the shard that owns the uid; inserts go to
        the shard owning the object's Hilbert key interval.  Touched
        shards are rebuilt copy-on-write over their new membership
        (untouched shards keep their warm engines), and the whole batch
        becomes visible atomically when the new view is published — a
        reader either sees every mutation of the batch or none of them.

        The batch is all-or-nothing: every mutation is validated against
        the pre-batch state (plus earlier mutations of the same batch)
        before anything is rebuilt, so a duplicate insert or unknown uid
        raises :class:`ServiceError` and leaves the published view
        untouched.  A move keeps its uid on the owning shard (the shard
        MBR stretches to cover the new geometry, so pruning stays exact);
        sustained drift is what the rebalance hook is for: when a shard
        drains empty or outgrows ``rebalance_threshold`` times the
        balanced share, the dataset is re-tiled into fresh Hilbert shards
        before the epoch is published.

        Writers serialise on one mutation lock; readers are never blocked
        and keep whatever epoch view they captured at admission.
        """
        self._begin_work()
        try:
            return self._apply_many_counted(mutations)
        finally:
            self._end_work()

    def _apply_many_counted(self, mutations: Sequence[Mutation]) -> MutationResult:
        if not mutations:
            # Nothing to publish: an empty batch is a no-op, not an epoch
            # (and never reaches the WAL, keeping batch seq == epoch step).
            view = self._view
            return MutationResult(
                stats=MutationStats(epoch=view.epoch), num_objects=view.num_objects
            )
        start = time.perf_counter()
        with self._mutation_lock:
            view = self._view
            stats = MutationStats()
            per_shard: dict[int, list[Mutation]] = {}
            owner = dict(view.owner)
            for mutation in mutations:
                shard_id = self._route(view, owner, mutation)
                per_shard.setdefault(shard_id, []).append(mutation)
                stats.count(mutation)
            if not owner:
                raise ServiceError(
                    "cannot delete every object; the service needs a non-empty dataset"
                )
            if self.wal is not None:
                # Write-ahead: the batch is validated above and logged here,
                # before any shard is rebuilt or the epoch becomes visible —
                # a crash at any later point replays it on recovery.
                self.wal.append(mutations)
            # Copy-on-write: recompute membership for touched shards only.
            memberships: dict[int, tuple[SpatialObject, ...]] = {}
            for shard_id, batch in per_shard.items():
                members = {o.uid: o for o in view.shards[shard_id].spec.objects}
                for mutation in batch:
                    if isinstance(mutation, Insert):
                        members[mutation.obj.uid] = mutation.obj
                    elif isinstance(mutation, Delete):
                        members.pop(mutation.uid, None)
                    else:
                        members[mutation.uid] = mutation.obj
                memberships[shard_id] = tuple(members.values())
            stats.shards_touched = len(per_shard)

            sizes = [
                len(memberships.get(shard.spec.shard_id, shard.spec.objects))
                for shard in view.shards
            ]
            total = sum(sizes)
            balanced_share = max(1, total // max(1, min(self._shards_requested, total)))
            rebalance = (
                min(sizes) == 0
                or max(sizes) > self.rebalance_threshold * balanced_share
            )
            if rebalance:
                live: list[SpatialObject] = []
                for shard in view.shards:
                    live.extend(memberships.get(shard.spec.shard_id, shard.spec.objects))
                new_view = self._build_view(live, epoch=view.epoch + 1)
                stats.rebalanced = True
                # A re-tile rebuilds every shard of the new view, not just
                # the ones the batch routed to.
                stats.shards_touched = len(new_view.shards)
            else:
                new_shards = list(view.shards)
                for shard_id, members in memberships.items():
                    spec = ShardSpec(
                        shard_id, members, key_range=view.shards[shard_id].spec.key_range
                    )
                    new_shards[shard_id] = _EngineShard(
                        spec=spec,
                        engine=SpatialEngine(spec.objects, **self._engine_kwargs),
                    )
                new_view = _ShardView(
                    epoch=view.epoch + 1,
                    shards=tuple(new_shards),
                    owner=owner,
                    encoder=view.encoder,
                )
            new_view = self._publish_view(new_view, view)
            stats.epoch = new_view.epoch
            self._view = new_view
            if self._procpool is not None and view.publication is not None:
                # Supersede the old epoch's segments; they unlink once the
                # last in-flight reader that pinned them releases.
                self._procpool.retire(view.publication)
            page_capacity = new_view.shards[0].engine.page_capacity
            self.profile = DatasetProfile.from_objects(self.objects, page_capacity)
            self.planner = Planner(self.profile)
            stats.elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.telemetry.record_mutations(stats)
            # Epoch hooks fire after the publish, still under the mutation
            # lock: exactly once per published epoch, in epoch order —
            # what WAL shipping and replication streams rely on.  Batches
            # that never publish (empty, or failed validation) never fire.
            for listener in list(self._epoch_listeners):
                listener(new_view.epoch, mutations)
            return MutationResult(
                stats=stats, num_objects=new_view.num_objects, applied=list(mutations)
            )

    def _route(
        self, view: _ShardView, owner: dict[int, int], mutation: Mutation
    ) -> int:
        """Owning shard of one mutation (updates the evolving owner map)."""
        if isinstance(mutation, (Insert, Move)):
            # Ingress validation, before the WAL sees the batch: non-finite
            # geometry would survive the binary checkpoint packer but is
            # emitted as nonstandard JSON (NaN/Infinity) by the WAL and
            # wire serde, so a strict parser downstream (a replica) would
            # reject a frame this primary acked.  Reject it here instead.
            validate_finite_geometry(mutation.obj)
            if self._procpool is not None and not isinstance(
                mutation.obj, (Segment, BoxObject)
            ):
                raise ServiceError(
                    f"process-mode service cannot store opaque object uid "
                    f"{mutation.obj.uid} ({type(mutation.obj).__name__}); its "
                    "payload cannot cross the shared-memory column boundary"
                )
        if isinstance(mutation, Insert):
            uid = mutation.obj.uid
            if uid in owner:
                raise ServiceError(f"cannot insert duplicate uid {uid}")
            shard_id = self._route_insert(view, mutation.obj)
            owner[uid] = shard_id
            return shard_id
        if isinstance(mutation, Delete):
            shard_id = owner.pop(mutation.uid, None)
            if shard_id is None:
                raise ServiceError(f"cannot delete unknown uid {mutation.uid}")
            return shard_id
        if isinstance(mutation, Move):
            shard_id = owner.get(mutation.uid)
            if shard_id is None:
                raise ServiceError(f"cannot move unknown uid {mutation.uid}")
            return shard_id
        raise ServiceError(f"cannot apply mutation of type {type(mutation).__name__}")

    def _route_insert(self, view: _ShardView, obj: SpatialObject) -> int:
        """Shard owning the Hilbert key interval the new object falls in.

        Shard key intervals are contiguous and sorted, so the first shard
        whose upper bound is at or past the object's key owns it; keys
        past every interval (objects outside the original world clamp to
        its boundary cells) land on the last shard.
        """
        if view.encoder is None or len(view.shards) == 1:
            return view.shards[0].spec.shard_id
        key = view.encoder.key_of_box(obj.aabb)
        for shard in view.shards:
            key_range = shard.spec.key_range
            if key_range is not None and key <= key_range[1]:
                return shard.spec.shard_id
        return view.shards[-1].spec.shard_id

    # -- execution -------------------------------------------------------------
    def execute(self, query: Query, timeout_s: float | None = None) -> ServiceResult:
        """Admit, fan out, and deterministically merge one query.

        Raises :class:`ServiceOverloadError` when admission rejects,
        :class:`ServiceTimeoutError` past the deadline, and
        :class:`ServiceError` when a shard worker fails; all three derive
        from :class:`EngineError`, and none of them poisons the pool.
        """
        self._begin_work()
        try:
            with trace.span("service.execute", query=type(query).__name__) as sp:
                self.telemetry.record_submitted()
                try:
                    with trace.span("service.admit") as admit_sp:
                        wait_ms = self.admission.admit()
                        admit_sp.set(wait_ms=round(wait_ms, 3))
                except ServiceOverloadError:
                    self.telemetry.record_rejected()
                    raise
                try:
                    result = self._execute_admitted(query, timeout_s, wait_ms)
                except ServiceTimeoutError:
                    self.telemetry.record_timeout()
                    raise
                except BaseException:
                    self.telemetry.record_failure()
                    raise
                finally:
                    self.admission.release()
                self.telemetry.record_completed(result.stats)
                stats = result.stats
                sp.set(
                    kind=stats.kind,
                    epoch=stats.epoch,
                    shards=stats.shards_used,
                    results=stats.num_results,
                )
                self.slow_log.record(
                    stats.kind,
                    stats.elapsed_ms,
                    epoch=stats.epoch,
                    shards_used=stats.shards_used,
                    num_results=stats.num_results,
                    admission_wait_ms=round(stats.admission_wait_ms, 3),
                )
                return result
        finally:
            self._end_work()

    def query_many(
        self, queries: Sequence[Query], timeout_s: float | None = None
    ) -> list[ServiceResult]:
        """Execute a batch; each query is admitted and fanned out in turn.

        Results come back in input order.  Per-query shard subtasks run
        concurrently on the pool; the batch as a whole runs from the
        calling thread, so many client threads can pipeline their own
        batches against one service.
        """
        return [self.execute(query, timeout_s=timeout_s) for query in queries]

    def _execute_admitted(
        self, query: Query, timeout_s: float | None, wait_ms: float
    ) -> ServiceResult:
        start = time.perf_counter()
        effective = timeout_s if timeout_s is not None else self.default_timeout_s
        deadline = None if effective is None else start + effective
        # One view for the whole fan-out: every subtask of this query (and
        # every window of a walkthrough) runs against the same epoch, so
        # concurrent writers can never tear the answer.  Pinning also
        # holds the view's shared-memory publication (process mode) so a
        # writer cannot unlink its segments while subtasks map them.
        view = self._pin_view()
        try:
            if isinstance(query, RangeQuery):
                payload, work, merge_ms = self._execute_range(query, deadline, view)
                kind = "range"
            elif isinstance(query, KNNQuery):
                payload, work, merge_ms = self._execute_knn(query, deadline, view)
                kind = "knn"
            elif isinstance(query, SpatialJoin):
                payload, work, merge_ms = self._execute_join(query, deadline, view)
                kind = "join"
            elif isinstance(query, Walkthrough):
                payload, work, merge_ms = self._execute_walk(query, deadline, view)
                kind = "walk"
            else:
                raise ServiceError(
                    f"cannot execute query of type {type(query).__name__}"
                )
        finally:
            self._unpin_view(view)
        stats = ServiceStats(
            kind=kind,
            shards_total=len(view.shards),
            shards_used=len({w.shard_id for w in work}),
            epoch=view.epoch,
            num_results=_payload_size(kind, payload),
            admission_wait_ms=wait_ms,
            elapsed_ms=(time.perf_counter() - start) * 1000.0,
            merge_ms=merge_ms,
            shard_work=work,
        )
        return ServiceResult(payload=payload, stats=stats)

    # -- fan-out plumbing ------------------------------------------------------
    def _fan_out(
        self,
        subtasks: Sequence[tuple[int, Callable[[], Any]]],
        deadline: float | None,
    ) -> list[Any]:
        """Run ``(shard_id, thunk)`` subtasks on the thread pool, in order.

        When a trace is open, each thunk is submitted inside a copy of the
        calling context, so the worker thread sees the parent span through
        the :class:`~contextvars.ContextVar` and its ``shard.subtask`` span
        (with that thread's own kernel-batch delta) lands under it.
        """
        if trace.active():
            futures: list[tuple[int, Future]] = [
                (
                    shard_id,
                    self._pool.submit(
                        contextvars.copy_context().run, _traced_thunk, shard_id, thunk
                    ),
                )
                for shard_id, thunk in subtasks
            ]
        else:
            futures = [
                (shard_id, self._pool.submit(thunk)) for shard_id, thunk in subtasks
            ]
        return self._collect(futures, deadline)

    def _collect(
        self, futures: Sequence[tuple[int, Future]], deadline: float | None
    ) -> list[Any]:
        """Await ``(shard_id, future)`` subtasks; collect results in order.

        The first worker exception cancels everything not yet started and
        surfaces as :class:`ServiceError` carrying the shard id; a missed
        deadline surfaces as :class:`ServiceTimeoutError`.  Subtasks
        already running are left to finish on their pool (workers cannot
        be interrupted); their results are discarded and the pool is
        reusable immediately.  Works identically over thread-pool and
        process-pool futures — both are ``concurrent.futures`` futures.
        """
        try:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            done, pending = wait(
                {future for _, future in futures},
                timeout=remaining,
                return_when=FIRST_EXCEPTION,
            )
            for shard_id, future in futures:
                if future in done and future.exception() is not None:
                    error = future.exception()
                    raise ServiceError(
                        f"shard {shard_id} failed: {error}", shard_id=shard_id
                    ) from error
            if pending:
                raise ServiceTimeoutError(
                    f"query missed its deadline with {len(pending)} of "
                    f"{len(futures)} shard subtasks unfinished"
                )
            return [future.result() for _, future in futures]
        finally:
            for _, future in futures:
                future.cancel()

    def _shard_subtask(self, shard: _EngineShard, query: Query) -> tuple[ShardWork, Any]:
        cpu_start = time.thread_time()
        result = shard.execute_locked(query)
        cpu_ms = (time.thread_time() - cpu_start) * 1000.0
        work = _work_from(
            shard.spec.shard_id, result.stats, io_model=True, cpu_ms=cpu_ms
        )
        return work, result.payload

    def _query_fan_out(
        self,
        shard_queries: Sequence[tuple[int, Query]],
        deadline: float | None,
        view: _ShardView,
    ) -> list[tuple[ShardWork, Any]]:
        """Fan ``(shard_id, subquery)`` pairs out on the active executor.

        Returns one ``(ShardWork, payload)`` per subtask, in input order —
        the executor modes are interchangeable above this line, which is
        what keeps their merged results byte-identical.
        """
        if self._procpool is not None and view.publication is not None:
            backend = kernels.active_backend()
            traced = trace.active()
            futures = [
                (
                    shard_id,
                    self._procpool.submit_query(
                        view.publication, shard_id, subquery, backend, traced
                    ),
                )
                for shard_id, subquery in shard_queries
            ]
            outcomes = self._collect(futures, deadline)
            results = []
            for (shard_id, _), (payload, stats, cpu_ms, span_dict) in zip(
                shard_queries, outcomes
            ):
                # Worker spans come back pickled; re-parent them here so the
                # process fan-out renders like the thread fan-out.
                trace.attach(span_dict)
                results.append(
                    (_work_from(shard_id, stats, io_model=True, cpu_ms=cpu_ms), payload)
                )
            return results
        shards_by_id = {s.spec.shard_id: s for s in view.shards}
        subtasks = [
            (
                shard_id,
                lambda shard=shards_by_id[shard_id], q=subquery: self._shard_subtask(
                    shard, q
                ),
            )
            for shard_id, subquery in shard_queries
        ]
        return self._fan_out(subtasks, deadline)

    # -- per-kind execution ----------------------------------------------------
    def _execute_range(
        self, query: RangeQuery, deadline: float | None, view: _ShardView
    ) -> tuple[list[int], list[ShardWork], float]:
        uids, work = self._range_fan_out(query.box, query.strategy, deadline, view)
        start = time.perf_counter()
        uids.sort()
        return uids, work, (time.perf_counter() - start) * 1000.0

    def _range_fan_out(
        self, box, strategy: str | None, deadline: float | None, view: _ShardView
    ) -> tuple[list[int], list[ShardWork]]:
        touched = [s for s in view.shards if s.spec.mbr.intersects(box)]
        subquery = RangeQuery(box, strategy=strategy)
        outcomes = self._query_fan_out(
            [(shard.spec.shard_id, subquery) for shard in touched], deadline, view
        )
        uids: list[int] = []
        work: list[ShardWork] = []
        for shard_work, payload in outcomes:
            uids.extend(payload)
            work.append(shard_work)
        return uids, work

    def _execute_knn(
        self, query: KNNQuery, deadline: float | None, view: _ShardView
    ) -> tuple[list[tuple[int, float]], list[ShardWork], float]:
        shard_queries = [
            (
                shard.spec.shard_id,
                KNNQuery(
                    query.point, min(query.k, len(shard.spec)), strategy=query.strategy
                ),
            )
            for shard in view.shards
        ]
        outcomes = self._query_fan_out(shard_queries, deadline, view)
        start = time.perf_counter()
        candidates: list[tuple[float, int]] = []
        work: list[ShardWork] = []
        for shard_work, payload in outcomes:
            candidates.extend((distance, uid) for uid, distance in payload)
            work.append(shard_work)
        top = heapq.nsmallest(query.k, candidates)
        payload = [(uid, distance) for distance, uid in top]
        return payload, work, (time.perf_counter() - start) * 1000.0

    def _join_sides(
        self, query: SpatialJoin
    ) -> tuple[Sequence[SpatialObject], Sequence[SpatialObject]]:
        if query.side_a is not None and query.side_b is not None:
            return query.side_a, query.side_b
        if (query.side_a is None) != (query.side_b is None):
            raise EngineError("SpatialJoin needs both sides or neither")
        if self.circuit is None:
            raise EngineError(
                "SpatialJoin without explicit sides needs a service bound to a "
                "circuit (axon x dendrite default)"
            )
        return self.circuit.axon_segments(), self.circuit.dendrite_segments()

    def _execute_join(
        self, query: SpatialJoin, deadline: float | None, view: _ShardView
    ) -> tuple[list[tuple[int, int]], list[ShardWork], float]:
        side_a, side_b = self._join_sides(query)
        plan = self.planner.plan(query, join_sizes=(len(side_a), len(side_b)))
        chunks = round_robin_split(side_b, len(view.shards))
        if self._procpool is not None:
            # Joins travel by pickle, not by shared memory: each worker
            # joins the full build side against one probe chunk, exactly
            # the thread-mode split, so the sorted pair merge is
            # byte-identical.
            backend = kernels.active_backend()
            traced = trace.active()
            futures = [
                (
                    shard_id,
                    self._procpool.submit_join_chunk(
                        plan.strategy, side_a, chunk, query, backend, traced
                    ),
                )
                for shard_id, chunk in enumerate(chunks)
            ]
            outcomes = self._collect(futures, deadline)
            start = time.perf_counter()
            pairs: list[tuple[int, int]] = []
            work: list[ShardWork] = []
            for (shard_id, _), (chunk_pairs, stats, cpu_ms, span_dict) in zip(
                futures, outcomes
            ):
                trace.attach(span_dict)
                pairs.extend(chunk_pairs)
                work.append(_work_from(shard_id, stats, io_model=False, cpu_ms=cpu_ms))
            pairs.sort()
            return pairs, work, (time.perf_counter() - start) * 1000.0
        if plan.strategy == "touch" and side_a:
            # Build TOUCH's hierarchy over A once; workers share it
            # read-only with private bucket overlays (phases 2+3 only).
            refine = segment_touch_refine if query.refine else None
            root = build_touch_tree(side_a)
            bucket_nodes = list(root.iter_nodes())
            for node in bucket_nodes:
                if node.is_leaf and node.objects:
                    node.packed_object_bounds()

            def join_chunk(chunk: tuple[SpatialObject, ...]) -> tuple[list, EngineStats]:
                pairs, counter, elapsed_ms = probe_shard(
                    root, bucket_nodes, chunk, len(side_a), query.eps, refine
                )
                stats = EngineStats(
                    kind="join",
                    strategy="touch",
                    comparisons=counter.comparisons,
                    num_results=len(pairs),
                    elapsed_ms=elapsed_ms,
                )
                return pairs, stats
        else:

            def join_chunk(chunk: tuple[SpatialObject, ...]) -> tuple[list, EngineStats]:
                payload, stats, _raw = timed(
                    lambda: run_join(plan.strategy, side_a, chunk, query)
                )
                return payload, stats

        def timed_chunk(
            chunk: tuple[SpatialObject, ...]
        ) -> tuple[list, EngineStats, float]:
            cpu_start = time.thread_time()
            chunk_pairs, stats = join_chunk(chunk)
            return chunk_pairs, stats, (time.thread_time() - cpu_start) * 1000.0

        subtasks = [
            (shard_id, lambda chunk=chunk: timed_chunk(chunk))
            for shard_id, chunk in enumerate(chunks)
        ]
        outcomes = self._fan_out(subtasks, deadline)
        start = time.perf_counter()
        pairs = []
        work = []
        for (shard_id, _), (chunk_pairs, stats, cpu_ms) in zip(subtasks, outcomes):
            pairs.extend(chunk_pairs)
            work.append(_work_from(shard_id, stats, io_model=False, cpu_ms=cpu_ms))
        pairs.sort()
        return pairs, work, (time.perf_counter() - start) * 1000.0

    def _execute_walk(
        self, query: Walkthrough, deadline: float | None, view: _ShardView
    ) -> tuple[list[list[int]], list[ShardWork], float]:
        steps: list[list[int]] = []
        per_shard: dict[int, list[ShardWork]] = {}
        merge_ms = 0.0
        for window in query.queries:
            uids, work = self._range_fan_out(window, None, deadline, view)
            start = time.perf_counter()
            uids.sort()
            merge_ms += (time.perf_counter() - start) * 1000.0
            steps.append(uids)
            for item in work:
                per_shard.setdefault(item.shard_id, []).append(item)
        combined = [
            ShardWork(
                shard_id=shard_id,
                strategy="range-fanout",
                service_ms=sum(w.service_ms for w in items),
                elapsed_ms=sum(w.elapsed_ms for w in items),
                pages_read=sum(w.pages_read for w in items),
                comparisons=sum(w.comparisons for w in items),
                num_results=sum(w.num_results for w in items),
                cpu_ms=sum(w.cpu_ms for w in items),
            )
            for shard_id, items in sorted(per_shard.items())
        ]
        return steps, combined, merge_ms


def _traced_thunk(shard_id: int, thunk: Callable[[], Any]) -> Any:
    """Run one fan-out thunk under a ``shard.subtask`` span.

    Executes on the worker thread inside a copied context, so the span's
    kernel-batch delta is that thread's own and the finished span appends
    to the parent captured at submit time.
    """
    with trace.span("shard.subtask", shard=shard_id):
        return thunk()


def _work_from(
    shard_id: int, stats: EngineStats, io_model: bool, cpu_ms: float = 0.0
) -> ShardWork:
    """Map one shard subtask's engine stats into the service breakdown.

    ``io_model`` selects the modelled cost: simulated I/O for the paged
    query paths, measured CPU for the in-memory joins (which perform no
    simulated I/O at all) — mirroring how the experiments report each
    subsystem.
    """
    return ShardWork(
        shard_id=shard_id,
        strategy=stats.strategy,
        service_ms=stats.io_time_ms if io_model else stats.elapsed_ms,
        elapsed_ms=stats.elapsed_ms,
        pages_read=stats.pages_read,
        comparisons=stats.comparisons,
        num_results=stats.num_results,
        cpu_ms=cpu_ms,
    )


def _payload_size(kind: str, payload: Any) -> int:
    if kind == "walk":
        return sum(len(step) for step in payload)
    return len(payload)
