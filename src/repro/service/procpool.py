"""Process-pool shard execution over shared-memory arena publications.

The thread-pool fan-out of :class:`~repro.service.ShardedEngine` is
GIL-bound: shard subtasks are pure Python work, so four workers on four
shards still serialise on one interpreter.  This module is the escape
hatch — a :class:`ProcessShardExecutor` that

* **publishes** each shard's :class:`~repro.storage.arena.ColumnarArena`
  as one ``multiprocessing.shared_memory`` segment (fixed-width column
  rows behind an epoch-stamped header, see
  :meth:`ColumnarArena.pack_payload`),
* **maps** the segments zero-copy in worker processes, which decode the
  columns once per publication and cache a warm per-shard
  :class:`~repro.engine.SpatialEngine` keyed by segment name (the name
  carries the publication generation, so a republished shard invalidates
  naturally), and
* **fans out** range/knn/join/walk subtasks to those workers, returning
  plain ``concurrent.futures`` futures the service's existing deadline
  and merge plumbing consumes unchanged.

Safe publication and teardown
-----------------------------
Mutation batches republish only the touched shards' segments; untouched
shards carry their segment into the next publication.  A publication is
reference-counted: every in-flight query acquires it for the whole
fan-out, and a superseded publication's segments are unlinked only once
its last reader releases it — a reader can never observe a segment
disappearing under a running query.  The *publishing* process owns every
segment's lifecycle.  Workers attach and immediately close their mapping
— they never unlink and never touch the resource tracker: the tracker
process (and its name cache, a set) is shared by the whole process tree
under both ``fork`` and ``spawn``, so a worker's attach-time registration
(CPython < 3.13 registers attaches too, bpo-39959) is an idempotent
duplicate of the parent's, and an explicit worker-side *unregister* would
delete the parent's claim and turn a crashed parent into a real leak.
:meth:`close` unlinks every segment the executor ever created — including
after SIGKILL'd workers, which cannot leak anything precisely because the
parent never delegated ownership; and if the parent itself dies before
``close``, the shared resource tracker reclaims the segments at shutdown.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from itertools import count
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from threading import Lock
from typing import Any, Sequence

from repro import kernels
from repro.engine.engine import SpatialEngine
from repro.engine.executors import run_join, timed
from repro.engine.queries import Query, SpatialJoin
from repro.errors import ServiceError
from repro.obs import trace
from repro.objects import SpatialObject
from repro.storage.arena import ColumnarArena

__all__ = ["ProcessShardExecutor", "SEGMENT_PREFIX", "active_segment_names"]

#: Every segment this module creates is named ``rpr-<token>-<shard>-<gen>``.
#: The prefix is what the CI leak check greps ``/dev/shm`` for.
SEGMENT_PREFIX = "rpr-"

_TOKENS = count(1)


def active_segment_names() -> list[str]:
    """Shared-memory segments of this module currently live on the host.

    Linux backs POSIX shared memory with ``/dev/shm``; on platforms
    without it the check degrades to "nothing observable" rather than
    failing.  Used by tests and the CI leak gate.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux hosts
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(SEGMENT_PREFIX)
    )


class _Segment:
    """One shard's published column block (parent-owned lifecycle)."""

    __slots__ = ("name", "stamp", "shm", "owners", "unlinked")

    def __init__(self, name: str, stamp: int, shm: SharedMemory) -> None:
        self.name = name
        self.stamp = stamp  # header epoch stamp workers verify on attach
        self.shm = shm
        self.owners = 1  # publications carrying this segment
        self.unlinked = False


class _Publication:
    """One epoch's segment set plus its reader refcount."""

    __slots__ = ("generation", "segments", "readers", "retired", "dropped")

    def __init__(self, generation: int, segments: dict[int, _Segment]) -> None:
        self.generation = generation
        self.segments = segments  # shard_id -> _Segment
        self.readers = 0
        self.retired = False
        self.dropped = False


class ProcessShardExecutor:
    """Owns the worker pool, the segment registry and publication refcounts.

    ``mp_start`` picks the multiprocessing start method: ``fork`` (the
    Linux default — workers inherit the imported modules, so the first
    task is cheap) or ``spawn`` (portable, required on macOS/Windows
    where ``fork`` is unavailable or unsafe; workers re-import, so the
    first task per worker pays an interpreter start).  Worker functions
    and task payloads are importable/picklable under both.
    """

    def __init__(
        self,
        max_workers: int,
        mp_start: str | None = None,
        engine_kwargs: dict[str, Any] | None = None,
    ) -> None:
        if mp_start is None:
            try:
                ctx = get_context("fork")
            except ValueError:  # pragma: no cover - platforms without fork
                ctx = get_context("spawn")
        else:
            try:
                ctx = get_context(mp_start)
            except ValueError as error:
                raise ServiceError(f"unknown multiprocessing start method: {error}")
        self._ctx = ctx
        self._max_workers = max(1, max_workers)
        self._engine_kwargs = dict(engine_kwargs or {})
        self._token = f"{os.getpid():x}x{next(_TOKENS):x}"
        self._lock = Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._segments: dict[str, _Segment] = {}
        self._generation = 0
        self._closed = False

    # -- publication lifecycle ---------------------------------------------
    def publish(
        self,
        arenas: dict[int, ColumnarArena | None],
        previous: _Publication | None = None,
    ) -> _Publication:
        """Publish one epoch's shard set; ``None`` carries the old segment.

        Touched shards pack a fresh segment stamped with this publication's
        generation; untouched shards (``arena is None``) share the previous
        publication's segment, bumping its owner count.  The caller retires
        ``previous`` separately once the new view is visible.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            self._generation += 1
            generation = self._generation
            segments: dict[int, _Segment] = {}
            try:
                for shard_id, arena in arenas.items():
                    if arena is None:
                        if previous is None or shard_id not in previous.segments:
                            raise ServiceError(
                                f"no previous segment to carry for shard {shard_id}"
                            )
                        segment = previous.segments[shard_id]
                        segment.owners += 1
                        segments[shard_id] = segment
                    else:
                        segments[shard_id] = self._pack_segment(
                            shard_id, generation, arena
                        )
            except BaseException:
                # Publication failed part way: release everything it took.
                for segment in segments.values():
                    segment.owners -= 1
                    if segment.owners == 0:
                        self._unlink(segment)
                raise
            return _Publication(generation=generation, segments=segments)

    def _pack_segment(
        self, shard_id: int, generation: int, arena: ColumnarArena
    ) -> _Segment:
        payload = arena.pack_payload(epoch=generation)
        name = f"{SEGMENT_PREFIX}{self._token}-{shard_id}-{generation}"
        shm = SharedMemory(name=name, create=True, size=len(payload))
        shm.buf[: len(payload)] = payload
        segment = _Segment(name=name, stamp=generation, shm=shm)
        self._segments[name] = segment
        return segment

    def acquire(self, publication: _Publication) -> bool:
        """Pin a publication for one query's fan-out; False once dropped."""
        with self._lock:
            if publication.dropped or self._closed:
                return False
            publication.readers += 1
            return True

    def release(self, publication: _Publication) -> None:
        with self._lock:
            publication.readers -= 1
            self._maybe_drop(publication)

    def retire(self, publication: _Publication) -> None:
        """Mark a superseded publication; unlinks once its readers drain."""
        with self._lock:
            publication.retired = True
            self._maybe_drop(publication)

    def _maybe_drop(self, publication: _Publication) -> None:
        if publication.dropped or not publication.retired or publication.readers:
            return
        publication.dropped = True
        for segment in publication.segments.values():
            segment.owners -= 1
            if segment.owners == 0:
                self._unlink(segment)

    def _unlink(self, segment: _Segment) -> None:
        if segment.unlinked:
            return
        segment.unlinked = True
        self._segments.pop(segment.name, None)
        try:
            segment.shm.close()
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass

    # -- fan-out ------------------------------------------------------------
    def submit_query(
        self,
        publication: _Publication,
        shard_id: int,
        query: Query,
        backend: str,
        traced: bool = False,
    ) -> Future:
        """One shard subtask against the publication's mapped columns.

        With ``traced`` the worker captures a local span tree around the
        execution and ships it back pickled (``Span.to_dict``) as the
        result tuple's last element for the parent to re-parent.
        """
        segment = publication.segments[shard_id]
        return self._submit(
            _run_query_task,
            segment.name,
            segment.stamp,
            self._engine_kwargs,
            query,
            backend,
            traced,
        )

    def submit_join_chunk(
        self,
        strategy: str,
        side_a: Sequence[SpatialObject],
        chunk: Sequence[SpatialObject],
        query: SpatialJoin,
        backend: str,
        traced: bool = False,
    ) -> Future:
        """One probe-side join chunk (sides travel by pickle, not by shm)."""
        return self._submit(
            _run_join_task, strategy, side_a, chunk, query, backend, traced
        )

    def _submit(self, fn, *args) -> Future:
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            pool = self._pool
            if pool is None:
                pool = self._pool = self._make_pool()
        try:
            return pool.submit(fn, *args)
        except (BrokenProcessPool, RuntimeError) as error:
            # A SIGKILL'd worker breaks the whole pool.  Replace it once
            # and resubmit — the service stays usable, and the dead pool's
            # workers can leak nothing (segments are parent-owned).
            with self._lock:
                if self._closed:
                    raise ServiceError("service is closed") from error
                if self._pool is pool:
                    pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = self._make_pool()
                pool = self._pool
            return pool.submit(fn, *args)

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self._max_workers, mp_context=self._ctx)

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and unlink every segment ever created.

        Idempotent.  The registry sweep is the resource-tracker-aware
        backstop: even if a publication was never retired (or its workers
        were SIGKILL'd mid-task), every ``/dev/shm`` block this executor
        created is released here, because the parent alone owns them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
            self._pool = None
            leftovers = list(self._segments.values())
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            for segment in leftovers:
                self._unlink(segment)

    @property
    def closed(self) -> bool:
        return self._closed


# -- worker side --------------------------------------------------------------
#
# Everything below runs inside pool workers.  The engine cache is keyed by
# the segment name *minus* its generation suffix (one warm engine per
# shard per service); a republished shard arrives under a new name and
# simply replaces the stale entry.

_ENGINE_CACHE: dict[str, tuple[str, SpatialEngine]] = {}


def _attached_engine(
    seg_name: str, stamp: int, engine_kwargs: dict[str, Any]
) -> SpatialEngine:
    cache_key = seg_name.rsplit("-", 1)[0]
    cached = _ENGINE_CACHE.get(cache_key)
    if cached is not None and cached[0] == seg_name:
        return cached[1]
    try:
        shm = SharedMemory(name=seg_name)
    except FileNotFoundError as error:
        raise ServiceError(
            f"shared-memory publication {seg_name} is gone (superseded or closed)"
        ) from error
    try:
        found, arena = ColumnarArena.from_packed(shm.buf)
    finally:
        # Copy-decode then drop the mapping.  No unlink and no resource
        # tracker fiddling here: the tracker is shared with the parent,
        # whose unlink at retire/close time is the single release point.
        shm.close()
    if found != stamp:
        raise ServiceError(
            f"shared-memory publication {seg_name} has epoch stamp {found}, "
            f"expected {stamp}"
        )
    engine = SpatialEngine.from_arena(arena, **engine_kwargs)
    _ENGINE_CACHE[cache_key] = (seg_name, engine)
    return engine


def _run_query_task(
    seg_name: str,
    stamp: int,
    engine_kwargs: dict[str, Any],
    query: Query,
    backend: str,
    traced: bool = False,
):
    engine = _attached_engine(seg_name, stamp, engine_kwargs)
    with kernels.use_backend(backend):
        cpu_start = time.thread_time()
        if traced:
            # The parent's span objects cannot cross the process boundary;
            # capture a local trace and return it pickled for re-parenting.
            with trace.start_trace("shard.worker") as root:
                root.set(pid=os.getpid())
                result = engine.execute(query)
            span_dict = root.to_dict()
        else:
            result = engine.execute(query)
            span_dict = None
        cpu_ms = (time.thread_time() - cpu_start) * 1000.0
    return result.payload, result.stats, cpu_ms, span_dict


def _run_join_task(
    strategy: str,
    side_a: Sequence[SpatialObject],
    chunk: Sequence[SpatialObject],
    query: SpatialJoin,
    backend: str,
    traced: bool = False,
):
    with kernels.use_backend(backend):
        cpu_start = time.thread_time()
        if traced:
            with trace.start_trace("shard.worker") as root:
                root.set(pid=os.getpid())
                payload, stats, _raw = timed(
                    lambda: run_join(strategy, side_a, chunk, query)
                )
            span_dict = root.to_dict()
        else:
            payload, stats, _raw = timed(
                lambda: run_join(strategy, side_a, chunk, query)
            )
            span_dict = None
        cpu_ms = (time.thread_time() - cpu_start) * 1000.0
    return payload, stats, cpu_ms, span_dict
