"""Spatial partitioning of one dataset into engine shards.

A shard is a contiguous run of the dataset in Hilbert-curve order: sort all
object centres along the curve, cut the sorted sequence into ``num_shards``
equal-count chunks.  Equal counts balance the per-shard work (every shard
owns the same number of objects, so index sizes and scan costs match), and
curve contiguity makes each chunk a spatially coherent *tile* — a range
window touches only the shards whose tile it overlaps, which is what lets
the service prune the fan-out.

The partitioning is a pure function of ``(objects, num_shards, order)``:
ties on the Hilbert key break by ``uid``, so shard membership is exactly
reproducible across runs, thread schedules and kernel backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ServiceError
from repro.geometry.aabb import AABB
from repro.hilbert.curve import HilbertEncoder3D
from repro.objects import SpatialObject

__all__ = ["ShardSpec", "hilbert_shards", "round_robin_split"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a spatially partitioned dataset.

    ``mbr`` is the union of the member objects' AABBs (not the tile of
    space): a query window that misses every member's box misses the whole
    shard, so the service can skip it without consulting the shard's index.

    ``key_range`` is the shard's span ``(lo, hi)`` on the Hilbert curve the
    partitioner sorted by — the shard *owns* that contiguous key interval,
    which is what lets the live-data write path route an inserted object to
    a shard without consulting any index (``None`` when the partitioner did
    not sort, e.g. the single-shard fast path).
    """

    shard_id: int
    objects: tuple[SpatialObject, ...]
    key_range: tuple[int, int] | None = None
    mbr: AABB = field(init=False)

    def __post_init__(self) -> None:
        if not self.objects:
            raise ServiceError("a shard cannot be empty", shard_id=self.shard_id)
        object.__setattr__(self, "mbr", AABB.union_all(o.aabb for o in self.objects))

    def __len__(self) -> int:
        return len(self.objects)


def hilbert_shards(
    objects: Sequence[SpatialObject],
    num_shards: int,
    order: int = 10,
) -> list[ShardSpec]:
    """Partition ``objects`` into up to ``num_shards`` Hilbert-order tiles.

    Every object lands in exactly one shard (the invariant every merge in
    :class:`~repro.service.ShardedEngine` relies on).  When the dataset is
    smaller than ``num_shards`` the count is clamped so no shard is empty.

    >>> shards = hilbert_shards(circuit.segments(), 4)
    >>> sum(len(s) for s in shards) == len(circuit.segments())
    True
    """
    if num_shards < 1:
        raise ServiceError("need at least one shard")
    if not objects:
        raise ServiceError("cannot shard an empty dataset")
    num_shards = min(num_shards, len(objects))
    if num_shards == 1:
        return [ShardSpec(0, tuple(objects))]

    world = AABB.union_all(o.aabb for o in objects)
    encoder = HilbertEncoder3D(world, order=order)
    keys = encoder.keys_of_boxes([o.aabb for o in objects])
    ranked = sorted(range(len(objects)), key=lambda i: (keys[i], objects[i].uid))

    base, extra = divmod(len(ranked), num_shards)
    shards: list[ShardSpec] = []
    cursor = 0
    for shard_id in range(num_shards):
        take = base + (1 if shard_id < extra else 0)
        picked = ranked[cursor : cursor + take]
        members = tuple(objects[i] for i in picked)
        key_range = (keys[picked[0]], keys[picked[-1]])
        shards.append(ShardSpec(shard_id, members, key_range=key_range))
        cursor += take
    return shards


def round_robin_split(
    objects: Sequence[SpatialObject], num_shards: int
) -> list[tuple[SpatialObject, ...]]:
    """Deal ``objects`` round-robin into up to ``num_shards`` non-empty groups.

    Used for join fan-out, where the probe side needs balanced *work*, not
    spatial coherence (every group is joined against the full build side, so
    no pair can be lost to a boundary or found twice).
    """
    if num_shards < 1:
        raise ServiceError("need at least one shard")
    num_shards = max(1, min(num_shards, len(objects)))
    groups: list[list[SpatialObject]] = [[] for _ in range(num_shards)]
    for position, obj in enumerate(objects):
        groups[position % num_shards].append(obj)
    return [tuple(group) for group in groups]
