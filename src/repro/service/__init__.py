"""The service layer: a concurrent, admission-controlled query front.

:class:`ShardedEngine` spatially partitions one dataset into N Hilbert
shards, owns one :class:`~repro.engine.SpatialEngine` per shard, and fans
queries out across a real worker pool with deterministic result merging.
The supporting pieces:

* :mod:`repro.service.sharding` — the Hilbert-order partitioner,
* :mod:`repro.service.admission` — backpressure (in-flight limit, bounded
  queue, rejection over deadlock),
* :mod:`repro.service.stats` — per-query :class:`ServiceStats` (makespan
  vs total work) and thread-safe :class:`ServiceTelemetry`.
"""

from repro.service.admission import AdmissionController, AdmissionSnapshot
from repro.service.procpool import ProcessShardExecutor, active_segment_names
from repro.service.sharded import ShardedEngine
from repro.service.sharding import ShardSpec, hilbert_shards, round_robin_split
from repro.service.stats import (
    ServiceResult,
    ServiceStats,
    ServiceTelemetry,
    ShardWork,
    batch_balance,
    batch_cpu_makespan_ms,
    batch_cpu_serialized_ms,
    batch_makespan_ms,
    batch_per_shard_cpu_ms,
    batch_per_shard_service_ms,
    batch_total_work_ms,
)

__all__ = [
    "AdmissionController",
    "AdmissionSnapshot",
    "ProcessShardExecutor",
    "ServiceResult",
    "ServiceStats",
    "ServiceTelemetry",
    "ShardSpec",
    "ShardWork",
    "ShardedEngine",
    "active_segment_names",
    "batch_balance",
    "batch_cpu_makespan_ms",
    "batch_cpu_serialized_ms",
    "batch_makespan_ms",
    "batch_per_shard_cpu_ms",
    "batch_per_shard_service_ms",
    "batch_total_work_ms",
    "hilbert_shards",
    "round_robin_split",
]
