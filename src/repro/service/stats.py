"""Service-level result envelopes and thread-safe telemetry.

Per query the service reports two clocks:

* **real wall time** (``elapsed_ms``) — what this process actually spent,
  including Python/GIL effects of the worker pool, and
* **modelled service time** (``makespan_ms`` vs ``total_work_ms``) — the
  deterministic cost model every experiment in this repo reports (simulated
  I/O per shard; compare :attr:`ShardedJoinResult.makespan_ms`).  The
  makespan is the slowest shard, i.e. the parallel service latency on a
  cluster with one node per shard; the total work is what a single node
  would pay.  The ratio is the modelled sharding speedup, and it is exact
  and machine-independent — which is what lets CI gate on it.

:class:`ServiceTelemetry` aggregates across queries *and threads*: every
count rides the metrics registry's lock-free per-thread cells, so counters
sum consistently no matter how many client threads hammer one service.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.engine.stats import EngineStats
from repro.obs.metrics import LATENCY_BUCKETS_MS, Counter, global_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.mutations import MutationStats
from repro.utils.tables import Table

__all__ = [
    "ServiceResult",
    "ServiceStats",
    "ServiceTelemetry",
    "ShardWork",
    "batch_balance",
    "batch_cpu_makespan_ms",
    "batch_cpu_serialized_ms",
    "batch_makespan_ms",
    "batch_per_shard_cpu_ms",
    "batch_per_shard_service_ms",
    "batch_total_work_ms",
]


@dataclass(frozen=True)
class ShardWork:
    """One shard's contribution to one service query."""

    shard_id: int
    strategy: str  # strategy the shard's engine actually ran
    service_ms: float  # modelled cost (simulated I/O) of the shard subtask
    elapsed_ms: float  # real wall time on the worker thread
    pages_read: int
    comparisons: int
    num_results: int
    cpu_ms: float = 0.0  # CPU time the subtask burned on its worker
    # ``cpu_ms`` is measured with the per-thread (thread pool) or
    # per-worker (process pool) CPU clock, so it excludes GIL waits and
    # scheduler preemption — the same subtask costs the same CPU no
    # matter how contended the host is, which is what lets the bench
    # compare executors deterministically on a one-core CI runner.


@dataclass
class ServiceStats:
    """The uniform per-query counters of one sharded execution."""

    kind: str  # "range" | "knn" | "join" | "walk"
    shards_total: int  # shards the service owns
    shards_used: int  # shards the query actually touched (after pruning)
    epoch: int = 0  # dataset epoch the query's snapshot view belongs to
    num_results: int = 0
    admission_wait_ms: float = 0.0  # time spent queued before execution
    elapsed_ms: float = 0.0  # real wall clock, admission excluded
    merge_ms: float = 0.0  # deterministic merge of shard partials
    shard_work: list[ShardWork] = field(default_factory=list)

    @property
    def makespan_ms(self) -> float:
        """Modelled parallel latency: the slowest shard subtask."""
        return max((w.service_ms for w in self.shard_work), default=0.0)

    @property
    def total_work_ms(self) -> float:
        """Modelled single-node latency: every shard subtask, serialised."""
        return sum(w.service_ms for w in self.shard_work)

    @property
    def balance(self) -> float:
        """Mean/max shard service time — 1.0 is a perfectly balanced fleet."""
        times = [w.service_ms for w in self.shard_work]
        if not times or max(times) == 0.0:
            return 1.0
        return (sum(times) / len(times)) / max(times)

    @property
    def pages_read(self) -> int:
        return sum(w.pages_read for w in self.shard_work)

    @property
    def comparisons(self) -> int:
        return sum(w.comparisons for w in self.shard_work)

    def as_engine_stats(self) -> EngineStats:
        """The query's counters in the single-engine envelope shape."""
        return EngineStats(
            kind=self.kind,
            strategy="sharded",
            pages_read=self.pages_read,
            io_time_ms=self.total_work_ms,
            comparisons=self.comparisons,
            num_results=self.num_results,
            elapsed_ms=self.elapsed_ms,
        )


@dataclass
class ServiceResult:
    """What every :meth:`ShardedEngine.execute` call returns.

    ``payload`` matches the single-engine payload for the query kind —
    range: sorted uids; knn: ``(uid, distance)`` pairs sorted by
    ``(distance, uid)``; join: sorted ``(uid_a, uid_b)`` pairs; walk: one
    sorted uid list per window.  The ordering is part of the contract: it
    is canonical, so two executions (any shard count, any thread schedule)
    return byte-identical payloads.
    """

    payload: Any
    stats: ServiceStats

    @property
    def num_results(self) -> int:
        return self.stats.num_results

    def render(self) -> str:
        s = self.stats
        table = Table(
            ["kind", "results", "shards", "makespan ms", "total work ms", "balance", "wall ms"],
            title="service result",
        )
        table.add_row(
            [
                s.kind,
                s.num_results,
                f"{s.shards_used}/{s.shards_total}",
                round(s.makespan_ms, 3),
                round(s.total_work_ms, 3),
                round(s.balance, 3),
                round(s.elapsed_ms, 3),
            ]
        )
        return table.render()


def batch_per_shard_service_ms(results: Iterable[ServiceResult]) -> dict[int, float]:
    """Total modelled service time each shard contributed to a batch."""
    per_shard: dict[int, float] = {}
    for result in results:
        for work in result.stats.shard_work:
            per_shard[work.shard_id] = per_shard.get(work.shard_id, 0.0) + work.service_ms
    return per_shard


def batch_makespan_ms(results: Iterable[ServiceResult]) -> float:
    """Modelled latency of a batch on a fleet with one node per shard.

    Each shard serialises its own subtasks but shards run in parallel, so
    the batch finishes when the busiest shard drains:
    ``max over shards of (sum of that shard's service_ms)``.
    """
    return max(batch_per_shard_service_ms(results).values(), default=0.0)


def batch_balance(results: Iterable[ServiceResult]) -> float:
    """Mean/max per-shard batch service time — 1.0 is perfectly balanced."""
    per_shard = batch_per_shard_service_ms(results)
    if not per_shard or max(per_shard.values()) <= 0.0:
        return 1.0
    return (sum(per_shard.values()) / len(per_shard)) / max(per_shard.values())


def batch_total_work_ms(results: Iterable[ServiceResult]) -> float:
    """Modelled latency of the same batch on a single node."""
    return sum(result.stats.total_work_ms for result in results)


def batch_per_shard_cpu_ms(results: Iterable[ServiceResult]) -> dict[int, float]:
    """Total subtask CPU each shard contributed to a batch."""
    per_shard: dict[int, float] = {}
    for result in results:
        for work in result.stats.shard_work:
            per_shard[work.shard_id] = per_shard.get(work.shard_id, 0.0) + work.cpu_ms
    return per_shard


def batch_cpu_serialized_ms(results: Iterable[ServiceResult]) -> float:
    """The batch's CPU cost when every shard subtask shares one interpreter.

    This is what the GIL forces on the thread-pool executor: subtask CPU
    cannot overlap, so the batch pays the *sum* of all per-shard CPU.
    """
    return sum(batch_per_shard_cpu_ms(results).values())


def batch_cpu_makespan_ms(results: Iterable[ServiceResult]) -> float:
    """The batch's CPU cost with one interpreter (process) per shard.

    Each shard serialises its own subtasks but shards overlap freely —
    no shared GIL — so the batch finishes when the busiest shard drains:
    ``max over shards of (sum of that shard's cpu_ms)``.
    """
    return max(batch_per_shard_cpu_ms(results).values(), default=0.0)


#: Process-wide service families, registered eagerly for the wire scrape.
_REGISTRY = global_registry()
_S_REQUESTS = _REGISTRY.counter(
    "repro_service_requests_total",
    "Sharded-service requests by outcome",
    label_names=("outcome",),
)
_S_RESULTS = _REGISTRY.counter(
    "repro_service_results_total", "Result rows returned by the sharded service"
)
_S_ADMISSION = _REGISTRY.histogram(
    "repro_service_admission_wait_ms",
    "Time requests spent queued before execution (ms)",
    buckets=LATENCY_BUCKETS_MS,
)
_S_SUBTASK_CPU = _REGISTRY.histogram(
    "repro_service_subtask_cpu_ms",
    "CPU-clock time of one shard subtask (ms), thread or process executor",
    buckets=LATENCY_BUCKETS_MS,
)
_S_MUTATIONS = _REGISTRY.counter(
    "repro_service_mutations_total",
    "Mutations applied through the sharded service",
    label_names=("op",),
)
_S_EPOCH = _REGISTRY.gauge(
    "repro_service_current_epoch", "Highest dataset epoch published by any service"
)


class ServiceTelemetry:
    """Service-lifetime aggregate, safe under concurrent mutation.

    Every count is a per-instance :class:`repro.obs.metrics.Counter`, so
    updates — including the ones issued from process-pool result handler
    threads — ride the registry's lock-free per-thread cells; only the
    epoch high-water mark keeps a lock (it is a max, not a sum).  Reads
    sum the cells, which makes this object the service's single source of
    truth for conservation checks: ``completed + failed + rejected +
    timed_out == submitted`` holds at every quiescent point, and
    ``results_returned`` equals the sum of per-query result counts.
    """

    def __init__(self) -> None:
        self._submitted = Counter("submitted")
        self._completed = Counter("completed")
        self._rejected = Counter("rejected")
        self._timed_out = Counter("timed_out")
        self._failed = Counter("failed")
        self._results = Counter("results_returned")
        self._shard_subtasks = Counter("shard_subtasks")
        self._admission_wait_ms = Counter("admission_wait_ms")
        self._makespan_ms = Counter("makespan_ms")
        self._total_work_ms = Counter("total_work_ms")
        self._by_kind = Counter("by_kind", label_names=("kind",))
        self._per_shard_service_ms = Counter(
            "per_shard_service_ms", label_names=("shard",)
        )
        self._per_shard_cpu_ms = Counter("per_shard_cpu_ms", label_names=("shard",))
        # Write-path counters (mutation batches published as epochs).
        self._mutation_batches = Counter("mutation_batches")
        self._mutations_applied = Counter("mutations_applied")
        self._inserts = Counter("inserts")
        self._deletes = Counter("deletes")
        self._moves = Counter("moves")
        self._mutation_ms = Counter("mutation_ms")
        self._shards_rebuilt = Counter("shards_rebuilt")
        self._rebalances = Counter("rebalances")
        self._epoch_lock = threading.Lock()
        self._current_epoch = 0

    # -- recording (lock-free except the epoch high-water mark) ----------------
    def record_submitted(self) -> None:
        self._submitted.inc()
        _S_REQUESTS.labels(outcome="submitted").inc()

    def record_rejected(self) -> None:
        self._rejected.inc()
        _S_REQUESTS.labels(outcome="rejected").inc()

    def record_timeout(self) -> None:
        self._timed_out.inc()
        _S_REQUESTS.labels(outcome="timed_out").inc()

    def record_failure(self) -> None:
        self._failed.inc()
        _S_REQUESTS.labels(outcome="failed").inc()

    def record_completed(self, stats: ServiceStats) -> None:
        self._completed.inc()
        self._results.inc(stats.num_results)
        self._shard_subtasks.inc(stats.shards_used)
        self._admission_wait_ms.inc(stats.admission_wait_ms)
        self._makespan_ms.inc(stats.makespan_ms)
        self._total_work_ms.inc(stats.total_work_ms)
        self._by_kind.labels(kind=stats.kind).inc()
        for work in stats.shard_work:
            self._per_shard_service_ms.labels(shard=work.shard_id).inc(work.service_ms)
            if work.cpu_ms:
                self._per_shard_cpu_ms.labels(shard=work.shard_id).inc(work.cpu_ms)
                _S_SUBTASK_CPU.observe(work.cpu_ms)
        _S_REQUESTS.labels(outcome="completed").inc()
        _S_RESULTS.inc(stats.num_results)
        _S_ADMISSION.observe(stats.admission_wait_ms)

    def record_mutations(self, stats: "MutationStats") -> None:
        """Fold one published mutation batch into the lifetime view.

        Conservation contract (checked by the mutation stress suite at
        quiescent points): ``inserts + deletes + moves ==
        mutations_applied``, and ``current_epoch`` equals the number of
        batches published (every ``apply_many`` bumps the epoch exactly
        once, rebalance or not).
        """
        self._mutation_batches.inc()
        self._mutations_applied.inc(stats.applied)
        self._inserts.inc(stats.inserts)
        self._deletes.inc(stats.deletes)
        self._moves.inc(stats.moves)
        self._mutation_ms.inc(stats.elapsed_ms)
        self._shards_rebuilt.inc(stats.shards_touched)
        if stats.rebalanced:
            self._rebalances.inc()
        _S_MUTATIONS.labels(op="insert").inc(stats.inserts)
        _S_MUTATIONS.labels(op="delete").inc(stats.deletes)
        _S_MUTATIONS.labels(op="move").inc(stats.moves)
        with self._epoch_lock:
            if stats.epoch > self._current_epoch:
                self._current_epoch = stats.epoch
                _S_EPOCH.set(stats.epoch)

    # -- compat surface (the attributes the lock-era class exposed) ------------
    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def timed_out(self) -> int:
        return int(self._timed_out.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def results_returned(self) -> int:
        return int(self._results.value)

    @property
    def shard_subtasks(self) -> int:
        return int(self._shard_subtasks.value)

    @property
    def admission_wait_ms(self) -> float:
        return self._admission_wait_ms.value

    @property
    def makespan_ms(self) -> float:
        return self._makespan_ms.value

    @property
    def total_work_ms(self) -> float:
        return self._total_work_ms.value

    @property
    def by_kind(self) -> dict[str, int]:
        return {
            child.label_values[0]: int(child.value)
            for child in self._by_kind.children()
            if child.value
        }

    @property
    def per_shard_service_ms(self) -> dict[int, float]:
        return {
            int(child.label_values[0]): child.value
            for child in self._per_shard_service_ms.children()
        }

    @property
    def per_shard_cpu_ms(self) -> dict[int, float]:
        """Total subtask CPU-clock ms per shard (thread or process workers)."""
        return {
            int(child.label_values[0]): child.value
            for child in self._per_shard_cpu_ms.children()
        }

    @property
    def mutation_batches(self) -> int:
        return int(self._mutation_batches.value)

    @property
    def mutations_applied(self) -> int:
        return int(self._mutations_applied.value)

    @property
    def inserts(self) -> int:
        return int(self._inserts.value)

    @property
    def deletes(self) -> int:
        return int(self._deletes.value)

    @property
    def moves(self) -> int:
        return int(self._moves.value)

    @property
    def mutation_ms(self) -> float:
        return self._mutation_ms.value

    @property
    def shards_rebuilt(self) -> int:
        return int(self._shards_rebuilt.value)

    @property
    def rebalances(self) -> int:
        return int(self._rebalances.value)

    @property
    def current_epoch(self) -> int:
        with self._epoch_lock:
            return self._current_epoch

    # -- reading ---------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A copy of every counter (exact at any quiescent point)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "results_returned": self.results_returned,
            "shard_subtasks": self.shard_subtasks,
            "admission_wait_ms": self.admission_wait_ms,
            "makespan_ms": self.makespan_ms,
            "total_work_ms": self.total_work_ms,
            "by_kind": self.by_kind,
            "per_shard_service_ms": self.per_shard_service_ms,
            "mutation_batches": self.mutation_batches,
            "mutations_applied": self.mutations_applied,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "moves": self.moves,
            "mutation_ms": self.mutation_ms,
            "shards_rebuilt": self.shards_rebuilt,
            "rebalances": self.rebalances,
            "current_epoch": self.current_epoch,
        }

    @property
    def modelled_speedup(self) -> float:
        """Aggregate total-work / makespan — the modelled sharding win."""
        makespan = self.makespan_ms
        if makespan <= 0.0:
            return 1.0
        return self.total_work_ms / makespan

    def render(self) -> str:
        snap = self.snapshot()
        table = Table(["metric", "value"], title="service telemetry")
        for key in (
            "submitted",
            "completed",
            "rejected",
            "timed_out",
            "failed",
            "results_returned",
            "shard_subtasks",
        ):
            table.add_row([key.replace("_", " "), snap[key]])
        table.add_row(["admission wait (ms)", round(snap["admission_wait_ms"], 2)])
        table.add_row(["modelled makespan (ms)", round(snap["makespan_ms"], 2)])
        table.add_row(["modelled total work (ms)", round(snap["total_work_ms"], 2)])
        if snap["mutation_batches"]:
            table.add_row(["mutation batches", snap["mutation_batches"]])
            table.add_row(["mutations applied", snap["mutations_applied"]])
            table.add_row(["  inserts", snap["inserts"]])
            table.add_row(["  deletes", snap["deletes"]])
            table.add_row(["  moves", snap["moves"]])
            table.add_row(["shards rebuilt", snap["shards_rebuilt"]])
            table.add_row(["rebalances", snap["rebalances"]])
            table.add_row(["current epoch", snap["current_epoch"]])
        for kind in sorted(snap["by_kind"]):
            table.add_row([f"  {kind} queries", snap["by_kind"][kind]])
        for shard_id in sorted(snap["per_shard_service_ms"]):
            table.add_row(
                [
                    f"  shard {shard_id} service (ms)",
                    round(snap["per_shard_service_ms"][shard_id], 2),
                ]
            )
        return table.render()
