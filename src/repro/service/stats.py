"""Service-level result envelopes and thread-safe telemetry.

Per query the service reports two clocks:

* **real wall time** (``elapsed_ms``) — what this process actually spent,
  including Python/GIL effects of the worker pool, and
* **modelled service time** (``makespan_ms`` vs ``total_work_ms``) — the
  deterministic cost model every experiment in this repo reports (simulated
  I/O per shard; compare :attr:`ShardedJoinResult.makespan_ms`).  The
  makespan is the slowest shard, i.e. the parallel service latency on a
  cluster with one node per shard; the total work is what a single node
  would pay.  The ratio is the modelled sharding speedup, and it is exact
  and machine-independent — which is what lets CI gate on it.

:class:`ServiceTelemetry` aggregates across queries *and threads*: every
mutation takes the internal lock, so counters sum consistently no matter
how many client threads hammer one service.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.engine.stats import EngineStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.mutations import MutationStats
from repro.utils.tables import Table

__all__ = [
    "ServiceResult",
    "ServiceStats",
    "ServiceTelemetry",
    "ShardWork",
    "batch_balance",
    "batch_cpu_makespan_ms",
    "batch_cpu_serialized_ms",
    "batch_makespan_ms",
    "batch_per_shard_cpu_ms",
    "batch_per_shard_service_ms",
    "batch_total_work_ms",
]


@dataclass(frozen=True)
class ShardWork:
    """One shard's contribution to one service query."""

    shard_id: int
    strategy: str  # strategy the shard's engine actually ran
    service_ms: float  # modelled cost (simulated I/O) of the shard subtask
    elapsed_ms: float  # real wall time on the worker thread
    pages_read: int
    comparisons: int
    num_results: int
    cpu_ms: float = 0.0  # CPU time the subtask burned on its worker
    # ``cpu_ms`` is measured with the per-thread (thread pool) or
    # per-worker (process pool) CPU clock, so it excludes GIL waits and
    # scheduler preemption — the same subtask costs the same CPU no
    # matter how contended the host is, which is what lets the bench
    # compare executors deterministically on a one-core CI runner.


@dataclass
class ServiceStats:
    """The uniform per-query counters of one sharded execution."""

    kind: str  # "range" | "knn" | "join" | "walk"
    shards_total: int  # shards the service owns
    shards_used: int  # shards the query actually touched (after pruning)
    epoch: int = 0  # dataset epoch the query's snapshot view belongs to
    num_results: int = 0
    admission_wait_ms: float = 0.0  # time spent queued before execution
    elapsed_ms: float = 0.0  # real wall clock, admission excluded
    merge_ms: float = 0.0  # deterministic merge of shard partials
    shard_work: list[ShardWork] = field(default_factory=list)

    @property
    def makespan_ms(self) -> float:
        """Modelled parallel latency: the slowest shard subtask."""
        return max((w.service_ms for w in self.shard_work), default=0.0)

    @property
    def total_work_ms(self) -> float:
        """Modelled single-node latency: every shard subtask, serialised."""
        return sum(w.service_ms for w in self.shard_work)

    @property
    def balance(self) -> float:
        """Mean/max shard service time — 1.0 is a perfectly balanced fleet."""
        times = [w.service_ms for w in self.shard_work]
        if not times or max(times) == 0.0:
            return 1.0
        return (sum(times) / len(times)) / max(times)

    @property
    def pages_read(self) -> int:
        return sum(w.pages_read for w in self.shard_work)

    @property
    def comparisons(self) -> int:
        return sum(w.comparisons for w in self.shard_work)

    def as_engine_stats(self) -> EngineStats:
        """The query's counters in the single-engine envelope shape."""
        return EngineStats(
            kind=self.kind,
            strategy="sharded",
            pages_read=self.pages_read,
            io_time_ms=self.total_work_ms,
            comparisons=self.comparisons,
            num_results=self.num_results,
            elapsed_ms=self.elapsed_ms,
        )


@dataclass
class ServiceResult:
    """What every :meth:`ShardedEngine.execute` call returns.

    ``payload`` matches the single-engine payload for the query kind —
    range: sorted uids; knn: ``(uid, distance)`` pairs sorted by
    ``(distance, uid)``; join: sorted ``(uid_a, uid_b)`` pairs; walk: one
    sorted uid list per window.  The ordering is part of the contract: it
    is canonical, so two executions (any shard count, any thread schedule)
    return byte-identical payloads.
    """

    payload: Any
    stats: ServiceStats

    @property
    def num_results(self) -> int:
        return self.stats.num_results

    def render(self) -> str:
        s = self.stats
        table = Table(
            ["kind", "results", "shards", "makespan ms", "total work ms", "balance", "wall ms"],
            title="service result",
        )
        table.add_row(
            [
                s.kind,
                s.num_results,
                f"{s.shards_used}/{s.shards_total}",
                round(s.makespan_ms, 3),
                round(s.total_work_ms, 3),
                round(s.balance, 3),
                round(s.elapsed_ms, 3),
            ]
        )
        return table.render()


def batch_per_shard_service_ms(results: Iterable[ServiceResult]) -> dict[int, float]:
    """Total modelled service time each shard contributed to a batch."""
    per_shard: dict[int, float] = {}
    for result in results:
        for work in result.stats.shard_work:
            per_shard[work.shard_id] = per_shard.get(work.shard_id, 0.0) + work.service_ms
    return per_shard


def batch_makespan_ms(results: Iterable[ServiceResult]) -> float:
    """Modelled latency of a batch on a fleet with one node per shard.

    Each shard serialises its own subtasks but shards run in parallel, so
    the batch finishes when the busiest shard drains:
    ``max over shards of (sum of that shard's service_ms)``.
    """
    return max(batch_per_shard_service_ms(results).values(), default=0.0)


def batch_balance(results: Iterable[ServiceResult]) -> float:
    """Mean/max per-shard batch service time — 1.0 is perfectly balanced."""
    per_shard = batch_per_shard_service_ms(results)
    if not per_shard or max(per_shard.values()) <= 0.0:
        return 1.0
    return (sum(per_shard.values()) / len(per_shard)) / max(per_shard.values())


def batch_total_work_ms(results: Iterable[ServiceResult]) -> float:
    """Modelled latency of the same batch on a single node."""
    return sum(result.stats.total_work_ms for result in results)


def batch_per_shard_cpu_ms(results: Iterable[ServiceResult]) -> dict[int, float]:
    """Total subtask CPU each shard contributed to a batch."""
    per_shard: dict[int, float] = {}
    for result in results:
        for work in result.stats.shard_work:
            per_shard[work.shard_id] = per_shard.get(work.shard_id, 0.0) + work.cpu_ms
    return per_shard


def batch_cpu_serialized_ms(results: Iterable[ServiceResult]) -> float:
    """The batch's CPU cost when every shard subtask shares one interpreter.

    This is what the GIL forces on the thread-pool executor: subtask CPU
    cannot overlap, so the batch pays the *sum* of all per-shard CPU.
    """
    return sum(batch_per_shard_cpu_ms(results).values())


def batch_cpu_makespan_ms(results: Iterable[ServiceResult]) -> float:
    """The batch's CPU cost with one interpreter (process) per shard.

    Each shard serialises its own subtasks but shards overlap freely —
    no shared GIL — so the batch finishes when the busiest shard drains:
    ``max over shards of (sum of that shard's cpu_ms)``.
    """
    return max(batch_per_shard_cpu_ms(results).values(), default=0.0)


class ServiceTelemetry:
    """Service-lifetime aggregate, safe under concurrent mutation.

    Unlike :class:`~repro.engine.stats.EngineTelemetry` (which guards only
    its own ``record``), this object is the service's single source of
    truth for conservation checks: ``completed + failed + rejected +
    timed_out == submitted`` holds at every quiescent point, and
    ``results_returned`` equals the sum of per-query result counts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.failed = 0
        self.results_returned = 0
        self.shard_subtasks = 0
        self.admission_wait_ms = 0.0
        self.makespan_ms = 0.0
        self.total_work_ms = 0.0
        self.by_kind: dict[str, int] = {}
        self.per_shard_service_ms: dict[int, float] = {}
        # Write-path counters (mutation batches published as epochs).
        self.mutation_batches = 0
        self.mutations_applied = 0
        self.inserts = 0
        self.deletes = 0
        self.moves = 0
        self.mutation_ms = 0.0
        self.shards_rebuilt = 0
        self.rebalances = 0
        self.current_epoch = 0

    # -- recording (each method takes the lock once) ---------------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timed_out += 1

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def record_completed(self, stats: ServiceStats) -> None:
        with self._lock:
            self.completed += 1
            self.results_returned += stats.num_results
            self.shard_subtasks += stats.shards_used
            self.admission_wait_ms += stats.admission_wait_ms
            self.makespan_ms += stats.makespan_ms
            self.total_work_ms += stats.total_work_ms
            self.by_kind[stats.kind] = self.by_kind.get(stats.kind, 0) + 1
            for work in stats.shard_work:
                self.per_shard_service_ms[work.shard_id] = (
                    self.per_shard_service_ms.get(work.shard_id, 0.0) + work.service_ms
                )

    def record_mutations(self, stats: "MutationStats") -> None:
        """Fold one published mutation batch into the lifetime view.

        Conservation contract (checked by the mutation stress suite at
        quiescent points): ``inserts + deletes + moves ==
        mutations_applied``, and ``current_epoch`` equals the number of
        batches published (every ``apply_many`` bumps the epoch exactly
        once, rebalance or not).
        """
        with self._lock:
            self.mutation_batches += 1
            self.mutations_applied += stats.applied
            self.inserts += stats.inserts
            self.deletes += stats.deletes
            self.moves += stats.moves
            self.mutation_ms += stats.elapsed_ms
            self.shards_rebuilt += stats.shards_touched
            if stats.rebalanced:
                self.rebalances += 1
            self.current_epoch = max(self.current_epoch, stats.epoch)

    # -- reading ---------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A consistent copy of every counter (one lock acquisition)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "timed_out": self.timed_out,
                "failed": self.failed,
                "results_returned": self.results_returned,
                "shard_subtasks": self.shard_subtasks,
                "admission_wait_ms": self.admission_wait_ms,
                "makespan_ms": self.makespan_ms,
                "total_work_ms": self.total_work_ms,
                "by_kind": dict(self.by_kind),
                "per_shard_service_ms": dict(self.per_shard_service_ms),
                "mutation_batches": self.mutation_batches,
                "mutations_applied": self.mutations_applied,
                "inserts": self.inserts,
                "deletes": self.deletes,
                "moves": self.moves,
                "mutation_ms": self.mutation_ms,
                "shards_rebuilt": self.shards_rebuilt,
                "rebalances": self.rebalances,
                "current_epoch": self.current_epoch,
            }

    @property
    def modelled_speedup(self) -> float:
        """Aggregate total-work / makespan — the modelled sharding win."""
        with self._lock:
            if self.makespan_ms <= 0.0:
                return 1.0
            return self.total_work_ms / self.makespan_ms

    def render(self) -> str:
        snap = self.snapshot()
        table = Table(["metric", "value"], title="service telemetry")
        for key in (
            "submitted",
            "completed",
            "rejected",
            "timed_out",
            "failed",
            "results_returned",
            "shard_subtasks",
        ):
            table.add_row([key.replace("_", " "), snap[key]])
        table.add_row(["admission wait (ms)", round(snap["admission_wait_ms"], 2)])
        table.add_row(["modelled makespan (ms)", round(snap["makespan_ms"], 2)])
        table.add_row(["modelled total work (ms)", round(snap["total_work_ms"], 2)])
        if snap["mutation_batches"]:
            table.add_row(["mutation batches", snap["mutation_batches"]])
            table.add_row(["mutations applied", snap["mutations_applied"]])
            table.add_row(["  inserts", snap["inserts"]])
            table.add_row(["  deletes", snap["deletes"]])
            table.add_row(["  moves", snap["moves"]])
            table.add_row(["shards rebuilt", snap["shards_rebuilt"]])
            table.add_row(["rebalances", snap["rebalances"]])
            table.add_row(["current epoch", snap["current_epoch"]])
        for kind in sorted(snap["by_kind"]):
            table.add_row([f"  {kind} queries", snap["by_kind"][kind]])
        for shard_id in sorted(snap["per_shard_service_ms"]):
            table.add_row(
                [
                    f"  shard {shard_id} service (ms)",
                    round(snap["per_shard_service_ms"][shard_id], 2),
                ]
            )
        return table.render()
