"""Connectome analysis: what the synapse join is *for*.

Placing synapses (paper §4) is the input to connectivity analysis — the
questions neuroscientists actually ask of the model: who connects to whom,
how strongly, and how connection probability falls with distance.  This
module turns a list of :class:`~repro.neuro.synapses.Synapse` into a
weighted directed graph (networkx) and computes the standard circuit-level
measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.neuro.circuit import Circuit
from repro.neuro.synapses import Synapse
from repro.utils.tables import Table

__all__ = [
    "build_connectome",
    "ConnectomeSummary",
    "summarize_connectome",
    "connection_probability_by_distance",
]


def build_connectome(synapses: Sequence[Synapse]) -> "nx.DiGraph":
    """Weighted digraph: neurons as nodes, touch counts as edge weights."""
    graph = nx.DiGraph()
    for synapse in synapses:
        pre, post = synapse.pre_neuron, synapse.post_neuron
        if graph.has_edge(pre, post):
            graph[pre][post]["weight"] += 1
        else:
            graph.add_edge(pre, post, weight=1)
    return graph


@dataclass
class ConnectomeSummary:
    """Circuit-level connectivity measures."""

    num_neurons: int
    num_connections: int  # directed neuron pairs with >= 1 synapse
    num_synapses: int
    mean_synapses_per_connection: float
    max_out_degree: int
    max_in_degree: int
    reciprocity: float  # fraction of connections that are bidirectional

    def render(self) -> str:
        table = Table(["measure", "value"], title="connectome summary")
        table.add_row(["connected neurons", self.num_neurons])
        table.add_row(["connections (directed)", self.num_connections])
        table.add_row(["synapses", self.num_synapses])
        table.add_row(["synapses/connection", self.mean_synapses_per_connection])
        table.add_row(["max out-degree", self.max_out_degree])
        table.add_row(["max in-degree", self.max_in_degree])
        table.add_row(["reciprocity", self.reciprocity])
        return table.render()


def summarize_connectome(synapses: Sequence[Synapse]) -> ConnectomeSummary:
    """Compute the summary measures for a synapse set."""
    graph = build_connectome(synapses)
    num_connections = graph.number_of_edges()
    num_synapses = sum(data["weight"] for _, _, data in graph.edges(data=True))
    reciprocal = sum(1 for u, v in graph.edges if graph.has_edge(v, u))
    return ConnectomeSummary(
        num_neurons=graph.number_of_nodes(),
        num_connections=num_connections,
        num_synapses=num_synapses,
        mean_synapses_per_connection=(
            num_synapses / num_connections if num_connections else 0.0
        ),
        max_out_degree=max((d for _, d in graph.out_degree()), default=0),
        max_in_degree=max((d for _, d in graph.in_degree()), default=0),
        reciprocity=(reciprocal / num_connections) if num_connections else 0.0,
    )


def connection_probability_by_distance(
    circuit: Circuit,
    synapses: Sequence[Synapse],
    bin_width: float = 50.0,
    max_distance: float | None = None,
) -> list[tuple[float, int, int, float]]:
    """Connection probability vs inter-soma distance.

    Returns rows ``(bin_upper_edge, connected_pairs, total_pairs,
    probability)`` over ordered neuron pairs.  The canonical finding on
    real tissue — probability falls with distance — emerges from the
    generator's local branching too.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    connected = {(s.pre_neuron, s.post_neuron) for s in synapses}
    positions = {n.gid: n.soma_position for n in circuit.neurons}
    gids = sorted(positions)

    pair_distances: list[tuple[float, bool]] = []
    for pre in gids:
        for post in gids:
            if pre == post:
                continue
            distance = positions[pre].distance_to(positions[post])
            pair_distances.append((distance, (pre, post) in connected))

    reach = max((d for d, _ in pair_distances), default=0.0)
    if max_distance is not None:
        reach = min(reach, max_distance)
    rows = []
    edge = bin_width
    while edge <= reach + bin_width:
        in_bin = [c for d, c in pair_distances if edge - bin_width <= d < edge]
        total = len(in_bin)
        hits = sum(in_bin)
        rows.append((edge, hits, total, hits / total if total else 0.0))
        edge += bin_width
    return rows
