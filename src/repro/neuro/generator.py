"""Synthetic morphology growth.

Grows biophysically plausible *stand-in* morphologies: a soma sprouting
basal dendrites, one apical dendrite biased toward the pia (+y) and an axon
biased downward, each a recursively bifurcating tree of tortuous sections.
The generator reproduces the spatial statistics the paper's techniques are
sensitive to — elongated, jagged, branching structures that overlap heavily
in dense tissue — with every draw taken from a seeded generator so circuits
are exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MorphologyError
from repro.geometry.vec import Vec3
from repro.neuro.morphology import Morphology, Section, SectionType
from repro.utils.rng import make_rng

__all__ = ["MorphologyConfig", "MorphologyGenerator"]


@dataclass(frozen=True)
class MorphologyConfig:
    """Growth parameters (lengths in micrometres, angles in degrees)."""

    soma_radius_mean: float = 8.0
    soma_radius_sd: float = 1.0
    num_basal_range: tuple[int, int] = (3, 5)
    num_apical: int = 1
    num_axon: int = 1
    points_per_section_range: tuple[int, int] = (5, 9)
    segment_length_mean: float = 9.0
    segment_length_sd: float = 2.5
    tortuosity_deg: float = 14.0
    branch_angle_deg: float = 38.0
    branch_prob: float = 0.7
    max_branch_order: int = 4
    initial_radius: dict[SectionType, float] = field(
        default_factory=lambda: {
            SectionType.AXON: 1.2,
            SectionType.BASAL_DENDRITE: 1.6,
            SectionType.APICAL_DENDRITE: 2.4,
        }
    )
    in_section_taper: float = 0.985
    branch_taper: float = 0.8
    apical_bias: float = 0.35
    axon_bias: float = 0.25
    apical_length_scale: float = 1.6
    # Axons genuinely run for millimetres in cortical tissue; long axonal
    # paths are also what the demo's walkthroughs follow.
    axon_length_scale: float = 2.6
    min_radius: float = 0.2

    def __post_init__(self) -> None:
        if self.num_basal_range[0] < 1 or self.num_basal_range[0] > self.num_basal_range[1]:
            raise MorphologyError("invalid num_basal_range")
        if self.points_per_section_range[0] < 2:
            raise MorphologyError("sections need at least 2 points")
        if not 0.0 <= self.branch_prob <= 1.0:
            raise MorphologyError("branch_prob must be a probability")
        if self.max_branch_order < 0:
            raise MorphologyError("max_branch_order must be >= 0")


def _rotate_about(v: Vec3, axis: Vec3, angle: float) -> Vec3:
    """Rodrigues rotation of ``v`` by ``angle`` radians around unit ``axis``."""
    cos_a = math.cos(angle)
    sin_a = math.sin(angle)
    return (
        v * cos_a
        + axis.cross(v) * sin_a
        + axis * (axis.dot(v) * (1.0 - cos_a))
    )


def _any_perpendicular(v: Vec3) -> Vec3:
    helper = Vec3(0.0, 0.0, 1.0) if abs(v.z) < 0.9 else Vec3(1.0, 0.0, 0.0)
    return v.cross(helper).normalized()


@dataclass(frozen=True)
class _GrowthTask:
    parent_id: int
    start: Vec3
    direction: Vec3
    radius: float
    section_type: SectionType
    order: int


class MorphologyGenerator:
    """Grows :class:`Morphology` instances from a :class:`MorphologyConfig`."""

    def __init__(self, config: MorphologyConfig | None = None) -> None:
        self.config = config if config is not None else MorphologyConfig()

    # -- public API -----------------------------------------------------------
    def grow(self, seed: int | np.random.Generator = 0) -> Morphology:
        """Grow one morphology with the soma at the origin."""
        rng = make_rng(seed)
        cfg = self.config
        soma_radius = max(1.0, rng.normal(cfg.soma_radius_mean, cfg.soma_radius_sd))
        morphology = Morphology(soma_position=Vec3.zero(), soma_radius=soma_radius)

        tasks: list[_GrowthTask] = []
        for direction, section_type in self._trunk_directions(rng):
            radius = cfg.initial_radius[section_type]
            start = direction * soma_radius  # on the soma surface
            tasks.append(
                _GrowthTask(
                    parent_id=-1,
                    start=start,
                    direction=direction,
                    radius=radius,
                    section_type=section_type,
                    order=0,
                )
            )

        next_section_id = 0
        # FIFO processing guarantees parents receive smaller ids than children.
        while tasks:
            task = tasks.pop(0)
            section_id = next_section_id
            next_section_id += 1
            section, end_direction = self._grow_section(task, section_id, rng)
            morphology.add_section(section)
            tasks.extend(self._maybe_branch(task, section, end_direction, rng))
        return morphology

    # -- growth internals ----------------------------------------------------
    def _trunk_directions(self, rng: np.random.Generator) -> list[tuple[Vec3, SectionType]]:
        cfg = self.config
        out: list[tuple[Vec3, SectionType]] = []
        num_basal = int(rng.integers(cfg.num_basal_range[0], cfg.num_basal_range[1] + 1))
        for _ in range(num_basal):
            # Basal dendrites leave sideways/downwards.
            direction = Vec3(
                float(rng.normal()), -abs(float(rng.normal())) * 0.7, float(rng.normal())
            ).normalized()
            out.append((direction, SectionType.BASAL_DENDRITE))
        for _ in range(cfg.num_apical):
            direction = Vec3(
                float(rng.normal()) * 0.2, 1.0, float(rng.normal()) * 0.2
            ).normalized()
            out.append((direction, SectionType.APICAL_DENDRITE))
        for _ in range(cfg.num_axon):
            direction = Vec3(
                float(rng.normal()) * 0.3, -1.0, float(rng.normal()) * 0.3
            ).normalized()
            out.append((direction, SectionType.AXON))
        return out

    def _length_scale(self, section_type: SectionType) -> float:
        if section_type is SectionType.APICAL_DENDRITE:
            return self.config.apical_length_scale
        if section_type is SectionType.AXON:
            return self.config.axon_length_scale
        return 1.0

    def _bias(self, section_type: SectionType) -> tuple[Vec3, float]:
        """Global direction pull (target, strength) per section type."""
        if section_type is SectionType.APICAL_DENDRITE:
            return Vec3(0.0, 1.0, 0.0), self.config.apical_bias
        if section_type is SectionType.AXON:
            return Vec3(0.0, -1.0, 0.0), self.config.axon_bias
        return Vec3(0.0, 0.0, 0.0), 0.0

    def _grow_section(
        self, task: _GrowthTask, section_id: int, rng: np.random.Generator
    ) -> tuple[Section, Vec3]:
        cfg = self.config
        lo, hi = cfg.points_per_section_range
        num_points = int(rng.integers(lo, hi + 1))
        scale = self._length_scale(task.section_type)
        bias_target, bias_strength = self._bias(task.section_type)

        points = [task.start]
        radii = [task.radius]
        direction = task.direction
        radius = task.radius
        for _ in range(num_points - 1):
            # Jagged growth: random tilt around a random perpendicular axis.
            tilt = math.radians(abs(float(rng.normal(0.0, cfg.tortuosity_deg))))
            spin = float(rng.uniform(0.0, 2.0 * math.pi))
            perp = _rotate_about(_any_perpendicular(direction), direction, spin)
            direction = _rotate_about(direction, perp, tilt).normalized()
            if bias_strength > 0.0:
                direction = (
                    direction * (1.0 - bias_strength) + bias_target * bias_strength
                ).normalized()
            step = max(1.0, float(rng.normal(cfg.segment_length_mean, cfg.segment_length_sd)))
            points.append(points[-1] + direction * (step * scale))
            radius = max(cfg.min_radius, radius * cfg.in_section_taper)
            radii.append(radius)

        section = Section(
            section_id=section_id,
            section_type=task.section_type,
            parent_id=task.parent_id,
            points=points,
            radii=radii,
        )
        return section, direction

    def _maybe_branch(
        self,
        task: _GrowthTask,
        section: Section,
        end_direction: Vec3,
        rng: np.random.Generator,
    ) -> list[_GrowthTask]:
        cfg = self.config
        if task.order >= cfg.max_branch_order:
            return []
        if float(rng.random()) >= cfg.branch_prob:
            return []
        # Bifurcate: two children splayed +/- half the branch angle around a
        # random axis perpendicular to the growth direction.
        half_angle = math.radians(cfg.branch_angle_deg) / 2.0
        spin = float(rng.uniform(0.0, 2.0 * math.pi))
        axis = _rotate_about(_any_perpendicular(end_direction), end_direction, spin)
        child_radius = max(cfg.min_radius, section.radii[-1] * cfg.branch_taper)
        children = []
        for sign in (1.0, -1.0):
            jitter = float(rng.normal(0.0, 0.15))
            child_dir = _rotate_about(end_direction, axis, sign * half_angle * (1.0 + jitter))
            children.append(
                _GrowthTask(
                    parent_id=section.section_id,
                    start=section.points[-1],
                    direction=child_dir.normalized(),
                    radius=child_radius,
                    section_type=task.section_type,
                    order=task.order + 1,
                )
            )
        return children
