"""Synapse placement ground truth (the touch rule).

Building a model ends with "identify[ing] where to place the synapses, i.e.,
the places where branches of different neurons are close enough for
electrical impulses to leap over" (paper §4).  The candidate pairs come from
a spatial distance join (TOUCH et al.); this module provides the exact
refinement — the touch rule of Kozloski et al. [7] — and a brute-force
oracle the join algorithms are property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry.distance import segment_segment_closest
from repro.geometry.segment import Segment
from repro.geometry.vec import Vec3

__all__ = ["Synapse", "refine_touch", "find_touches_brute_force"]


@dataclass(frozen=True, slots=True)
class Synapse:
    """A placed synapse candidate between an axonal and a dendritic segment."""

    pre_uid: int
    post_uid: int
    pre_neuron: int
    post_neuron: int
    position: Vec3
    gap: float  # surface-to-surface distance (<= tolerance; may be negative)


def refine_touch(pre: Segment, post: Segment, tolerance: float = 0.0) -> Synapse | None:
    """Apply the exact touch rule to a candidate pair.

    Returns a :class:`Synapse` at the midpoint of the closest approach when
    the capsule surfaces are within ``tolerance``, else ``None``.  Pairs from
    the same neuron never form synapses (autapses are excluded, as in the
    BBP pipeline).
    """
    if pre.neuron_id == post.neuron_id and pre.neuron_id != -1:
        return None
    s, t, axis_distance = segment_segment_closest(pre.p0, pre.p1, post.p0, post.p1)
    gap = axis_distance - pre.radius - post.radius
    if gap > tolerance:
        return None
    position = pre.point_at(s).lerp(post.point_at(t), 0.5)
    return Synapse(
        pre_uid=pre.uid,
        post_uid=post.uid,
        pre_neuron=pre.neuron_id,
        post_neuron=post.neuron_id,
        position=position,
        gap=gap,
    )


def find_touches_brute_force(
    pre_segments: Sequence[Segment],
    post_segments: Sequence[Segment],
    tolerance: float = 0.0,
) -> list[Synapse]:
    """O(n·m) oracle: every pair, exact rule.  Test/small-data use only."""
    synapses = []
    for pre in pre_segments:
        for post in post_segments:
            synapse = refine_touch(pre, post, tolerance)
            if synapse is not None:
                synapses.append(synapse)
    return synapses
