"""Circuits: neurons placed in a layered cortical column.

A circuit is the unit dataset of every experiment.  Template morphologies
(grown once per template, as in the BBP workflow) are placed at sampled soma
positions with a random rotation about the vertical axis.  ``segments()``
flattens the circuit into the capsule-segment dataset the indexes and joins
consume; increasing ``n_neurons`` at fixed column size reproduces the
"increasingly detailed models ⇒ denser data" axis of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import MorphologyError
from repro.geometry.aabb import AABB
from repro.geometry.segment import Segment
from repro.geometry.vec import Vec3
from repro.neuro.generator import MorphologyConfig, MorphologyGenerator
from repro.neuro.morphology import Morphology, SectionType
from repro.utils.rng import derive_seed, make_rng

__all__ = ["CircuitConfig", "Neuron", "Circuit", "generate_circuit"]

#: Cortical layers as (name, thickness fraction, relative neuron density).
_LAYERS = (
    ("L1", 0.08, 0.03),
    ("L2/3", 0.26, 0.28),
    ("L4", 0.16, 0.22),
    ("L5", 0.24, 0.24),
    ("L6", 0.26, 0.23),
)


@dataclass(frozen=True)
class CircuitConfig:
    """Parameters of a generated circuit (lengths in micrometres)."""

    n_neurons: int = 50
    column_radius: float = 220.0
    column_height: float = 1100.0
    n_morphology_templates: int = 8
    morphology: MorphologyConfig = field(default_factory=MorphologyConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_neurons < 1:
            raise MorphologyError("circuit needs at least one neuron")
        if self.n_morphology_templates < 1:
            raise MorphologyError("need at least one morphology template")
        if self.column_radius <= 0 or self.column_height <= 0:
            raise MorphologyError("column dimensions must be positive")


@dataclass
class Neuron:
    """A placed neuron: global id, soma position and world-space morphology."""

    gid: int
    soma_position: Vec3
    morphology: Morphology
    layer: str


class Circuit:
    """A set of placed neurons plus the flattened segment dataset."""

    def __init__(self, neurons: list[Neuron], config: CircuitConfig) -> None:
        self.neurons = neurons
        self.config = config
        self._segments: list[Segment] | None = None
        self._branch_ids: dict[tuple[int, int], int] = {}
        self._branch_map: dict[int, list[Segment]] | None = None

    # -- flattening -----------------------------------------------------------
    def segments(self) -> list[Segment]:
        """All capsule segments of the circuit with provenance tags.

        ``uid`` is dataset-wide sequential; ``branch_id`` is globally unique
        per (neuron, section) so SCOUT's evaluation can identify branches.
        The list is built once and cached.
        """
        if self._segments is None:
            segments: list[Segment] = []
            uid = 0
            for neuron in self.neurons:
                for section_id, order, p0, p1, radius in neuron.morphology.iter_segments():
                    key = (neuron.gid, section_id)
                    branch_id = self._branch_ids.setdefault(key, len(self._branch_ids))
                    segments.append(
                        Segment(
                            uid=uid,
                            p0=p0,
                            p1=p1,
                            radius=radius,
                            neuron_id=neuron.gid,
                            branch_id=branch_id,
                            order=order,
                        )
                    )
                    uid += 1
            self._segments = segments
        return self._segments

    def segments_of_type(self, *types: SectionType) -> list[Segment]:
        """Segments whose originating section has one of ``types``.

        Used to split the circuit into the axonal (pre-synaptic) and
        dendritic (post-synaptic) sides of the TOUCH join.
        """
        wanted = set(types)
        type_of_branch: dict[int, SectionType] = {}
        self.segments()  # ensure branch ids exist
        for neuron in self.neurons:
            for section in neuron.morphology.sections.values():
                key = (neuron.gid, section.section_id)
                if key in self._branch_ids:
                    type_of_branch[self._branch_ids[key]] = section.section_type
        return [s for s in self.segments() if type_of_branch.get(s.branch_id) in wanted]

    def axon_segments(self) -> list[Segment]:
        return self.segments_of_type(SectionType.AXON)

    def dendrite_segments(self) -> list[Segment]:
        return self.segments_of_type(
            SectionType.BASAL_DENDRITE, SectionType.APICAL_DENDRITE
        )

    # -- measures -------------------------------------------------------------
    @property
    def num_neurons(self) -> int:
        return len(self.neurons)

    @property
    def num_segments(self) -> int:
        return len(self.segments())

    def bounding_box(self) -> AABB:
        return AABB.union_all(s.aabb for s in self.segments())

    def column_box(self) -> AABB:
        """The nominal column the somas were placed in."""
        r = self.config.column_radius
        return AABB(-r, 0.0, -r, r, self.config.column_height, r)

    def segment_density(self) -> float:
        """Segments per cubic micrometre of the nominal column."""
        volume = math.pi * self.config.column_radius**2 * self.config.column_height
        return self.num_segments / volume

    def branch_map(self) -> dict[int, list[Segment]]:
        """branch_id -> segments in on-branch order (built once, cached)."""
        if self._branch_map is None:
            grouped: dict[int, list[Segment]] = {}
            for segment in self.segments():
                grouped.setdefault(segment.branch_id, []).append(segment)
            for segments in grouped.values():
                segments.sort(key=lambda s: s.order)
            self._branch_map = grouped
        return self._branch_map

    def branch_segments(self, branch_id: int) -> list[Segment]:
        """Segments of one branch in on-branch order."""
        return list(self.branch_map().get(branch_id, []))

    def branch_ids(self) -> list[int]:
        return sorted(self.branch_map())


def _sample_layer(rng, layers=_LAYERS) -> tuple[str, float, float]:
    """Pick a layer by relative density; return (name, y_lo_frac, y_hi_frac)."""
    weights = [density for _, _, density in layers]
    total = sum(weights)
    pick = float(rng.uniform(0.0, total))
    acc = 0.0
    y_top = 1.0  # layer 1 starts at the pia (top of the column)
    for name, thickness, density in layers:
        acc += density
        y_lo = y_top - thickness
        if pick <= acc:
            return name, y_lo, y_top
        y_top = y_lo
    name, thickness, _ = layers[-1]
    return name, 0.0, thickness


def generate_circuit(config: CircuitConfig | None = None, **overrides) -> Circuit:
    """Generate a circuit from ``config`` (or keyword overrides of the default).

    Examples
    --------
    >>> circuit = generate_circuit(n_neurons=20, seed=7)
    >>> circuit.num_neurons
    20
    """
    if config is None:
        config = CircuitConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")

    template_rng = make_rng(derive_seed(config.seed, "templates"))
    generator = MorphologyGenerator(config.morphology)
    templates = [
        generator.grow(make_rng(derive_seed(config.seed, "template", i)))
        for i in range(config.n_morphology_templates)
    ]
    del template_rng

    placement_rng = make_rng(derive_seed(config.seed, "placement"))
    neurons: list[Neuron] = []
    for gid in range(config.n_neurons):
        layer, y_lo_frac, y_hi_frac = _sample_layer(placement_rng)
        y = float(placement_rng.uniform(y_lo_frac, y_hi_frac)) * config.column_height
        # Uniform position in the column disk.
        angle = float(placement_rng.uniform(0.0, 2.0 * math.pi))
        r = config.column_radius * math.sqrt(float(placement_rng.uniform(0.0, 1.0)))
        position = Vec3(r * math.cos(angle), y, r * math.sin(angle))
        template = templates[int(placement_rng.integers(0, len(templates)))]
        rotation = float(placement_rng.uniform(0.0, 2.0 * math.pi))
        placed = template.transformed(translation=position, rotation_y=rotation)
        neurons.append(Neuron(gid=gid, soma_position=position, morphology=placed, layer=layer))
    return Circuit(neurons, config)
