"""Circuit persistence: save/load models as SWC files plus a manifest.

"Building models" (paper §1) implies storing them: a circuit round-trips
through a directory of standard SWC morphology files and a JSON manifest
with the placement information (gid, layer, soma position, rotation is
already baked into the stored coordinates).  The loaded circuit yields the
identical segment dataset, so indexes built before and after a round-trip
agree exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import MorphologyError
from repro.geometry.vec import Vec3
from repro.neuro.circuit import Circuit, CircuitConfig, Neuron
from repro.neuro.swc import read_swc, write_swc

__all__ = ["save_circuit", "load_circuit"]

_MANIFEST = "circuit.json"


def save_circuit(circuit: Circuit, directory: str | Path) -> Path:
    """Write ``circuit`` to ``directory`` (created if missing).

    Layout: one ``neuron_<gid>.swc`` per neuron plus ``circuit.json`` with
    the config and per-neuron metadata.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "format": "repro-circuit/1",
        "config": {
            "n_neurons": circuit.config.n_neurons,
            "column_radius": circuit.config.column_radius,
            "column_height": circuit.config.column_height,
            "n_morphology_templates": circuit.config.n_morphology_templates,
            "seed": circuit.config.seed,
        },
        "neurons": [],
    }
    for neuron in circuit.neurons:
        filename = f"neuron_{neuron.gid}.swc"
        write_swc(neuron.morphology, directory / filename)
        manifest["neurons"].append(
            {
                "gid": neuron.gid,
                "layer": neuron.layer,
                "soma": [neuron.soma_position.x, neuron.soma_position.y, neuron.soma_position.z],
                "file": filename,
            }
        )
    manifest_path = directory / _MANIFEST
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return manifest_path


def load_circuit(directory: str | Path) -> Circuit:
    """Load a circuit previously written by :func:`save_circuit`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise MorphologyError(f"no circuit manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != "repro-circuit/1":
        raise MorphologyError(f"unknown circuit format {manifest.get('format')!r}")

    config = CircuitConfig(**manifest["config"])
    neurons = []
    for record in manifest["neurons"]:
        morphology = read_swc(directory / record["file"])
        neurons.append(
            Neuron(
                gid=int(record["gid"]),
                soma_position=Vec3(*record["soma"]),
                morphology=morphology,
                layer=str(record["layer"]),
            )
        )
    neurons.sort(key=lambda n: n.gid)
    return Circuit(neurons, config)
