"""Surface meshes for neurons and circuits.

The datasets of the FLAT/SCOUT demos are "represented by a surface mesh"
(paper §2.2/§3.2, Figure 1 right).  These helpers skin morphology sections
into tube meshes so experiments and examples can report mesh-level statistics
(triangle counts, surface area) alongside the capsule representation.
"""

from __future__ import annotations

from repro.errors import MorphologyError
from repro.geometry.mesh import TriangleMesh, tube_mesh
from repro.neuro.circuit import Circuit
from repro.neuro.morphology import Morphology

__all__ = ["neuron_surface_mesh", "circuit_surface_mesh"]


def neuron_surface_mesh(morphology: Morphology, sides: int = 6) -> TriangleMesh:
    """Tube-mesh every section of ``morphology`` and merge the results."""
    if not morphology.sections:
        raise MorphologyError("cannot mesh a morphology with no sections")
    merged: TriangleMesh | None = None
    for section in sorted(morphology.sections.values(), key=lambda s: s.section_id):
        mesh = tube_mesh(section.points, section.radii, sides=sides)
        merged = mesh if merged is None else merged.merged_with(mesh)
    assert merged is not None
    return merged


def circuit_surface_mesh(
    circuit: Circuit, sides: int = 6, max_neurons: int | None = None
) -> TriangleMesh:
    """Merged surface mesh of (up to ``max_neurons``) neurons of a circuit."""
    neurons = circuit.neurons if max_neurons is None else circuit.neurons[:max_neurons]
    if not neurons:
        raise MorphologyError("circuit has no neurons to mesh")
    merged: TriangleMesh | None = None
    for neuron in neurons:
        mesh = neuron_surface_mesh(neuron.morphology, sides=sides)
        merged = mesh if merged is None else merged.merged_with(mesh)
    assert merged is not None
    return merged
