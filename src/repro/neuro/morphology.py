"""Neuron morphology model.

A morphology is a tree of *sections* (unbranched runs of 3-D points with
per-point radii) rooted at the soma, exactly the structure of the SWC
interchange format and of the BBP models the paper indexes.  Consecutive
point pairs of a section form the capsule segments that all spatial
algorithms operate on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MorphologyError
from repro.geometry.aabb import AABB
from repro.geometry.segment import Segment
from repro.geometry.vec import Vec3

__all__ = ["SectionType", "Section", "Morphology"]


class SectionType(enum.IntEnum):
    """SWC structure identifiers."""

    SOMA = 1
    AXON = 2
    BASAL_DENDRITE = 3
    APICAL_DENDRITE = 4


@dataclass
class Section:
    """An unbranched run of the morphology tree.

    ``points[0]`` coincides with the parent's last point (or the soma centre
    for root sections); ``radii`` holds the cross-section radius at each
    point.
    """

    section_id: int
    section_type: SectionType
    parent_id: int  # -1 for sections attached to the soma
    points: list[Vec3]
    radii: list[float]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.radii):
            raise MorphologyError(
                f"section {self.section_id}: {len(self.points)} points vs "
                f"{len(self.radii)} radii"
            )
        if len(self.points) < 2:
            raise MorphologyError(f"section {self.section_id} needs >= 2 points")
        if any(r < 0 for r in self.radii):
            raise MorphologyError(f"section {self.section_id} has a negative radius")

    @property
    def num_segments(self) -> int:
        return len(self.points) - 1

    def length(self) -> float:
        return sum(
            self.points[i].distance_to(self.points[i + 1]) for i in range(self.num_segments)
        )

    def arc_points(self) -> list[tuple[float, Vec3]]:
        """(cumulative arc length, point) pairs along the section."""
        out = [(0.0, self.points[0])]
        acc = 0.0
        for i in range(1, len(self.points)):
            acc += self.points[i - 1].distance_to(self.points[i])
            out.append((acc, self.points[i]))
        return out


@dataclass
class Morphology:
    """A complete neuron: soma plus a tree of sections."""

    soma_position: Vec3
    soma_radius: float
    sections: dict[int, Section] = field(default_factory=dict)

    def add_section(self, section: Section) -> None:
        if section.section_id in self.sections:
            raise MorphologyError(f"duplicate section id {section.section_id}")
        if section.parent_id != -1 and section.parent_id not in self.sections:
            raise MorphologyError(
                f"section {section.section_id} references unknown parent {section.parent_id}"
            )
        self.sections[section.section_id] = section

    # -- structure -----------------------------------------------------------
    @property
    def num_sections(self) -> int:
        return len(self.sections)

    @property
    def num_segments(self) -> int:
        return sum(s.num_segments for s in self.sections.values())

    def children_of(self, section_id: int) -> list[Section]:
        return [s for s in self.sections.values() if s.parent_id == section_id]

    def root_sections(self) -> list[Section]:
        return [s for s in self.sections.values() if s.parent_id == -1]

    def total_length(self) -> float:
        return sum(s.length() for s in self.sections.values())

    def max_branch_order(self) -> int:
        """Depth of the section tree (roots have order 0)."""
        order: dict[int, int] = {}

        def order_of(section: Section) -> int:
            if section.section_id in order:
                return order[section.section_id]
            if section.parent_id == -1:
                result = 0
            else:
                result = order_of(self.sections[section.parent_id]) + 1
            order[section.section_id] = result
            return result

        if not self.sections:
            return 0
        return max(order_of(s) for s in self.sections.values())

    def validate(self) -> None:
        """Check tree consistency: parent links resolve, sections connect."""
        for section in self.sections.values():
            if section.parent_id == -1:
                continue
            parent = self.sections.get(section.parent_id)
            if parent is None:
                raise MorphologyError(
                    f"section {section.section_id} has unknown parent {section.parent_id}"
                )
            gap = section.points[0].distance_to(parent.points[-1])
            tolerance = 1e-6 + 0.01 * max(parent.radii[-1], 1e-9)
            if gap > max(tolerance, 1e-6):
                raise MorphologyError(
                    f"section {section.section_id} does not attach to parent "
                    f"{section.parent_id} (gap {gap:.3g})"
                )

    # -- geometry ---------------------------------------------------------------
    def iter_segments(self) -> Iterator[tuple[int, int, Vec3, Vec3, float]]:
        """Yield ``(section_id, order, p0, p1, radius)`` for every segment.

        ``radius`` is the mean of the endpoint radii (frustum approximated by
        a capsule).
        """
        for section in self.sections.values():
            for i in range(section.num_segments):
                radius = 0.5 * (section.radii[i] + section.radii[i + 1])
                yield section.section_id, i, section.points[i], section.points[i + 1], radius

    def bounding_box(self) -> AABB:
        boxes = [
            AABB.from_center_extent(self.soma_position, 2.0 * self.soma_radius),
        ]
        for _, _, p0, p1, radius in self.iter_segments():
            boxes.append(Segment(0, p0, p1, radius).aabb)
        return AABB.union_all(boxes)

    # -- placement -------------------------------------------------------------------
    def transformed(self, translation: Vec3, rotation_y: float = 0.0) -> "Morphology":
        """A copy rotated by ``rotation_y`` radians about the vertical axis
        through the soma, then translated by ``translation``.

        This is how a template morphology is placed at a circuit position;
        rotating about the pia-facing axis preserves the layered anatomy.
        """
        cos_a = math.cos(rotation_y)
        sin_a = math.sin(rotation_y)
        origin = self.soma_position

        def place(p: Vec3) -> Vec3:
            rel = p - origin
            rotated = Vec3(
                rel.x * cos_a + rel.z * sin_a,
                rel.y,
                -rel.x * sin_a + rel.z * cos_a,
            )
            return rotated + origin + translation

        out = Morphology(
            soma_position=origin + translation,
            soma_radius=self.soma_radius,
        )
        for section in sorted(self.sections.values(), key=lambda s: s.section_id):
            out.add_section(
                Section(
                    section_id=section.section_id,
                    section_type=section.section_type,
                    parent_id=section.parent_id,
                    points=[place(p) for p in section.points],
                    radii=list(section.radii),
                )
            )
        return out
