"""Neuron morphology and circuit substrate.

The Blue Brain datasets behind the paper's demos are proprietary; this
package reconstructs their *spatial statistics* with a seeded synthetic
generator: a layered cortical column populated with neurons whose branched,
tortuous morphologies are grown recursively (apical/basal dendrites, axon).
Every segment carries provenance (neuron, branch, order) used only for
ground-truth evaluation, never by the spatial algorithms themselves.
"""

from repro.neuro.circuit import Circuit, CircuitConfig, generate_circuit
from repro.neuro.connectome import build_connectome, summarize_connectome
from repro.neuro.generator import MorphologyConfig, MorphologyGenerator
from repro.neuro.morphology import Morphology, Section, SectionType
from repro.neuro.morphometry import circuit_morphometry, sholl_analysis
from repro.neuro.persistence import load_circuit, save_circuit
from repro.neuro.surface import circuit_surface_mesh, neuron_surface_mesh
from repro.neuro.swc import read_swc, write_swc
from repro.neuro.synapses import Synapse, find_touches_brute_force

__all__ = [
    "Circuit",
    "CircuitConfig",
    "Morphology",
    "MorphologyConfig",
    "MorphologyGenerator",
    "Section",
    "SectionType",
    "Synapse",
    "build_connectome",
    "circuit_morphometry",
    "circuit_surface_mesh",
    "find_touches_brute_force",
    "generate_circuit",
    "load_circuit",
    "neuron_surface_mesh",
    "read_swc",
    "save_circuit",
    "sholl_analysis",
    "summarize_connectome",
    "write_swc",
]
