"""Morphometry: the statistics the neuroscientists compute over models.

Paper §2.1: "FLAT is currently used by the neuroscientists to compute
statistics (tissue density etc.) of the models they build."  This module
provides the standard morphometric measures — cable length by neurite type,
branch-order distributions, Sholl analysis, per-layer composition — over
single morphologies and whole circuits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.distance import point_segment_distance
from repro.neuro.circuit import Circuit
from repro.neuro.morphology import Morphology, SectionType
from repro.utils.tables import Table

__all__ = [
    "branch_order_histogram",
    "cable_length_by_type",
    "sholl_analysis",
    "MorphometryReport",
    "circuit_morphometry",
]


def cable_length_by_type(morphology: Morphology) -> dict[SectionType, float]:
    """Total cable length (µm) per neurite type."""
    totals: dict[SectionType, float] = {}
    for section in morphology.sections.values():
        totals[section.section_type] = totals.get(section.section_type, 0.0) + section.length()
    return totals


def branch_order_histogram(morphology: Morphology) -> dict[int, int]:
    """Number of sections at each branch order (roots are order 0)."""
    orders: dict[int, int] = {}
    cache: dict[int, int] = {}

    def order_of(section_id: int) -> int:
        if section_id in cache:
            return cache[section_id]
        section = morphology.sections[section_id]
        result = 0 if section.parent_id == -1 else order_of(section.parent_id) + 1
        cache[section_id] = result
        return result

    for section_id in morphology.sections:
        order = order_of(section_id)
        orders[order] = orders.get(order, 0) + 1
    return dict(sorted(orders.items()))


def sholl_analysis(
    morphology: Morphology, step: float = 50.0, max_radius: float | None = None
) -> list[tuple[float, int]]:
    """Sholl analysis: neurite crossings of concentric spheres at the soma.

    Returns ``(radius, crossings)`` pairs.  A segment crosses the sphere of
    radius ``r`` when its endpoints lie on opposite sides of it.
    """
    if step <= 0:
        raise ValueError("Sholl step must be positive")
    soma = morphology.soma_position
    distances = []
    for _, _, p0, p1, _ in morphology.iter_segments():
        distances.append((p0.distance_to(soma), p1.distance_to(soma)))
    if not distances:
        return []
    reach = max(max(d) for d in distances)
    if max_radius is not None:
        reach = min(reach, max_radius)
    out = []
    radius = step
    while radius <= reach + step:
        crossings = sum(
            1 for d0, d1 in distances if (d0 - radius) * (d1 - radius) <= 0 and d0 != d1
        )
        out.append((radius, crossings))
        radius += step
    return out


@dataclass
class MorphometryReport:
    """Aggregate morphometry of a circuit."""

    num_neurons: int
    num_sections: int
    num_segments: int
    total_cable_um: float
    cable_by_type: dict[SectionType, float]
    mean_segment_length: float
    mean_branch_order: float
    neurons_per_layer: dict[str, int]
    segment_density_per_um3: float
    synapse_candidates_per_um3: float | None = field(default=None)

    def render(self) -> str:
        table = Table(["measure", "value"], title="circuit morphometry")
        table.add_row(["neurons", self.num_neurons])
        table.add_row(["sections", self.num_sections])
        table.add_row(["segments", self.num_segments])
        table.add_row(["total cable (um)", self.total_cable_um])
        for section_type, cable in sorted(self.cable_by_type.items()):
            table.add_row([f"  cable {section_type.name.lower()} (um)", cable])
        table.add_row(["mean segment length (um)", self.mean_segment_length])
        table.add_row(["mean max branch order", self.mean_branch_order])
        table.add_row(["segment density (/um^3)", self.segment_density_per_um3])
        for layer, count in sorted(self.neurons_per_layer.items()):
            table.add_row([f"  neurons in {layer}", count])
        return table.render()


def circuit_morphometry(circuit: Circuit) -> MorphometryReport:
    """Aggregate the morphometric measures over a whole circuit."""
    cable_by_type: dict[SectionType, float] = {}
    total_sections = 0
    branch_orders = []
    for neuron in circuit.neurons:
        for section_type, cable in cable_length_by_type(neuron.morphology).items():
            cable_by_type[section_type] = cable_by_type.get(section_type, 0.0) + cable
        total_sections += neuron.morphology.num_sections
        branch_orders.append(neuron.morphology.max_branch_order())

    segments = circuit.segments()
    total_cable = sum(cable_by_type.values())
    layers: dict[str, int] = {}
    for neuron in circuit.neurons:
        layers[neuron.layer] = layers.get(neuron.layer, 0) + 1

    volume = math.pi * circuit.config.column_radius**2 * circuit.config.column_height
    return MorphometryReport(
        num_neurons=circuit.num_neurons,
        num_sections=total_sections,
        num_segments=len(segments),
        total_cable_um=total_cable,
        cable_by_type=cable_by_type,
        mean_segment_length=(
            sum(s.length for s in segments) / len(segments) if segments else 0.0
        ),
        mean_branch_order=(
            sum(branch_orders) / len(branch_orders) if branch_orders else 0.0
        ),
        neurons_per_layer=layers,
        segment_density_per_um3=len(segments) / volume,
    )


def nearest_neurite_distance(morphology: Morphology, point) -> float:
    """Distance from ``point`` to the closest neurite axis of a morphology."""
    best = math.inf
    for _, _, p0, p1, _ in morphology.iter_segments():
        best = min(best, point_segment_distance(point, p0, p1))
    return best
