"""Node-splitting policies.

``quadratic_split`` is Guttman's original quadratic-cost algorithm: pick the
two entries that waste the most space together as seeds, then greedily assign
the remainder by strongest preference, honouring the minimum fill.  A cheaper
``linear_split`` is provided for ablation.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IndexError_
from repro.geometry.aabb import AABB
from repro.rtree.node import Entry

__all__ = ["quadratic_split", "linear_split"]


def quadratic_split(entries: Sequence[Entry], min_entries: int) -> tuple[list[Entry], list[Entry]]:
    """Split ``entries`` into two groups, each with at least ``min_entries``."""
    if len(entries) < 2:
        raise IndexError_("cannot split fewer than two entries")
    if len(entries) < 2 * min_entries:
        raise IndexError_(
            f"cannot split {len(entries)} entries with min fill {min_entries}"
        )

    seed_a, seed_b = _pick_seeds(entries)
    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a].mbr
    mbr_b = entries[seed_b].mbr
    remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

    while remaining:
        # Force assignment if one group must absorb everything left to
        # satisfy the minimum fill.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break

        index = _pick_next(remaining, mbr_a, mbr_b)
        entry = remaining.pop(index)
        growth_a = mbr_a.enlargement(entry.mbr)
        growth_b = mbr_b.enlargement(entry.mbr)
        prefer_a = growth_a < growth_b
        if growth_a == growth_b:
            # Resolve ties by smaller volume, then fewer entries.
            if mbr_a.volume() != mbr_b.volume():
                prefer_a = mbr_a.volume() < mbr_b.volume()
            else:
                prefer_a = len(group_a) <= len(group_b)
        if prefer_a:
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return group_a, group_b


def _pick_seeds(entries: Sequence[Entry]) -> tuple[int, int]:
    """The pair wasting the most space when covered together."""
    worst = -1.0
    seeds = (0, 1)
    for i in range(len(entries)):
        vol_i = entries[i].mbr.volume()
        for j in range(i + 1, len(entries)):
            waste = (
                entries[i].mbr.union(entries[j].mbr).volume()
                - vol_i
                - entries[j].mbr.volume()
            )
            if waste > worst:
                worst = waste
                seeds = (i, j)
    return seeds


def _pick_next(remaining: Sequence[Entry], mbr_a: AABB, mbr_b: AABB) -> int:
    """The entry with the strongest preference for one of the groups."""
    best_index = 0
    best_diff = -1.0
    for i, entry in enumerate(remaining):
        diff = abs(mbr_a.enlargement(entry.mbr) - mbr_b.enlargement(entry.mbr))
        if diff > best_diff:
            best_diff = diff
            best_index = i
    return best_index


def linear_split(entries: Sequence[Entry], min_entries: int) -> tuple[list[Entry], list[Entry]]:
    """Guttman's linear split: seeds by greatest normalised separation."""
    if len(entries) < 2:
        raise IndexError_("cannot split fewer than two entries")
    if len(entries) < 2 * min_entries:
        raise IndexError_(
            f"cannot split {len(entries)} entries with min fill {min_entries}"
        )

    best_axis = 0
    best_separation = -1.0
    best_pair = (0, 1)
    lows = [(e.mbr.min_x, e.mbr.min_y, e.mbr.min_z) for e in entries]
    highs = [(e.mbr.max_x, e.mbr.max_y, e.mbr.max_z) for e in entries]
    for axis in range(3):
        highest_low = max(range(len(entries)), key=lambda i: lows[i][axis])
        lowest_high = min(range(len(entries)), key=lambda i: highs[i][axis])
        if highest_low == lowest_high:
            continue
        width = max(h[axis] for h in highs) - min(low[axis] for low in lows)
        if width <= 0:
            continue
        separation = (lows[highest_low][axis] - highs[lowest_high][axis]) / width
        if separation > best_separation:
            best_separation = separation
            best_axis = axis
            best_pair = (lowest_high, highest_low)
    del best_axis
    seed_a, seed_b = best_pair
    if seed_a == seed_b:  # all boxes identical; arbitrary seeds
        seed_a, seed_b = 0, 1

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a].mbr
    mbr_b = entries[seed_b].mbr
    others = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
    for idx, entry in enumerate(others):
        remaining = len(others) - idx  # including ``entry``
        # Force-assign when a group needs every remaining entry to reach
        # the minimum fill.
        if len(group_a) + remaining <= min_entries:
            group_a.extend(others[idx:])
            break
        if len(group_b) + remaining <= min_entries:
            group_b.extend(others[idx:])
            break
        if mbr_a.enlargement(entry.mbr) <= mbr_b.enlargement(entry.mbr):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return group_a, group_b
