"""R-tree: the classical spatial index the paper's techniques compare against.

Implemented from scratch: Guttman insertion with quadratic split, deletion
with tree condensation, exact range queries with per-level node-access
statistics (the demo's Figure 3 shows "how many nodes are retrieved on each
level"), early-exit seed search (used by FLAT), best-first k-nearest-
neighbour, and STR / Hilbert bulk loading.
"""

from repro.rtree.bulk import hilbert_bulk_load, str_bulk_load, str_chunks
from repro.rtree.node import ENTRY_BYTES, NODE_HEADER_BYTES, Entry, Node
from repro.rtree.stats import RangeQueryStats, SeedSearchStats
from repro.rtree.tree import RTree

__all__ = [
    "ENTRY_BYTES",
    "Entry",
    "NODE_HEADER_BYTES",
    "Node",
    "RangeQueryStats",
    "RTree",
    "SeedSearchStats",
    "hilbert_bulk_load",
    "str_bulk_load",
    "str_chunks",
]
