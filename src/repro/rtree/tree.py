"""The R-tree proper.

Dynamic operations follow Guttman's original design (ChooseLeaf by least
volume enlargement, quadratic split, condense-tree deletion); bulk loading
lives in :mod:`repro.rtree.bulk`.  Every traversal records the statistics the
paper's demo visualises: nodes read per level, entries tested, pages touched.

On dense data the R-tree's internal MBRs overlap heavily, so a range query
descends many parallel paths — that degradation is precisely what FLAT
(:mod:`repro.core.flat`) sidesteps, and the included counters make it
measurable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Container, Iterator, Sequence

from repro import kernels
from repro.errors import IndexError_, InvariantViolation
from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3
from repro.rtree.node import Entry, Node
from repro.rtree.split import quadratic_split
from repro.rtree.stats import KNNQueryStats, RangeQueryStats, SeedSearchStats

__all__ = ["RTree"]

SplitFunc = Callable[[Sequence[Entry], int], tuple[list[Entry], list[Entry]]]


class RTree:
    """A 3-D R-tree over ``(uid, AABB)`` pairs.

    Parameters
    ----------
    max_entries:
        Fan-out of internal nodes (and default leaf capacity).
    min_entries:
        Minimum fill; defaults to 40% of ``max_entries``.
    leaf_capacity:
        Leaf fan-out when it differs from the internal one (a leaf models a
        data page, an internal node an index page).
    split:
        Splitting policy; defaults to Guttman's quadratic split.
    """

    def __init__(
        self,
        max_entries: int = 16,
        min_entries: int | None = None,
        leaf_capacity: int | None = None,
        split: SplitFunc = quadratic_split,
    ) -> None:
        if max_entries < 2:
            raise IndexError_("max_entries must be >= 2")
        if min_entries is None:
            min_entries = max(1, (max_entries * 2) // 5)
        if not 1 <= min_entries <= max_entries // 2:
            raise IndexError_("min_entries must be in [1, max_entries/2]")
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.leaf_capacity = leaf_capacity if leaf_capacity is not None else max_entries
        if self.leaf_capacity < 2:
            raise IndexError_("leaf_capacity must be >= 2")
        self._split_func = split
        self._next_node_id = 0
        self.root = self._new_node(level=0)
        self._size = 0
        # Bulk loaders may leave a trailing underfull node per level; the
        # validator only enforces minimum fill for dynamically built trees.
        self._maintains_min_fill = True

    # -- construction helpers ------------------------------------------------
    def _new_node(self, level: int, entries: list[Entry] | None = None) -> Node:
        node = Node(level=level, entries=entries if entries is not None else [])
        node.node_id = self._next_node_id
        self._next_node_id += 1
        return node

    @classmethod
    def _from_root(
        cls,
        root: Node,
        size: int,
        max_entries: int,
        min_entries: int | None = None,
        leaf_capacity: int | None = None,
    ) -> "RTree":
        """Internal: wrap a bulk-built subtree into a tree object."""
        tree = cls(max_entries=max_entries, min_entries=min_entries, leaf_capacity=leaf_capacity)
        tree.root = root
        tree._size = size
        tree._maintains_min_fill = False
        tree._assign_node_ids()
        return tree

    def _assign_node_ids(self) -> None:
        """Number nodes breadth-first (stable ids for page accounting)."""
        next_id = 0
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            node.node_id = next_id
            next_id += 1
            if not node.is_leaf:
                queue.extend(e.child for e in node.entries if e.child is not None)
        self._next_node_id = next_id

    # -- basic properties -----------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        return self.root.level + 1

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def iter_nodes(self) -> Iterator[Node]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries if e.child is not None)

    def iter_leaf_entries(self) -> Iterator[Entry]:
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.entries

    def byte_size(self) -> int:
        """Modelled in-memory footprint of the index structure."""
        return sum(node.byte_size() for node in self.iter_nodes())

    def _capacity_of(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.max_entries

    def _min_fill_of(self, node: Node) -> int:
        """Minimum fill for ``node``'s kind.

        When leaves model data pages with their own capacity, the 40%
        internal-node fill can exceed the leaf capacity entirely, making
        leaf splits impossible; leaves then get the same 40% rule scaled
        to their own capacity.  Dynamic maintenance on page-leaved trees
        (the engine's object R-tree) depends on this.
        """
        if node.is_leaf and self.leaf_capacity != self.max_entries:
            return max(1, min(self.min_entries, (self.leaf_capacity * 2) // 5))
        return self.min_entries

    # -- insertion ---------------------------------------------------------------
    def insert(self, uid: int, mbr: AABB) -> None:
        """Insert object ``uid`` with bounding box ``mbr``."""
        self._insert_entry(Entry(mbr=mbr, uid=uid), level=0)
        self._size += 1

    def _insert_entry(self, entry: Entry, level: int) -> None:
        if level > self.root.level:
            raise IndexError_(f"cannot insert at level {level} above root {self.root.level}")
        overflow = self._insert_rec(self.root, entry, level)
        if overflow is not None:
            old_root = self.root
            self.root = self._new_node(
                level=old_root.level + 1,
                entries=[
                    Entry(mbr=old_root.mbr(), child=old_root),
                    Entry(mbr=overflow.mbr(), child=overflow),
                ],
            )

    def _insert_rec(self, node: Node, entry: Entry, level: int) -> Node | None:
        if node.level == level:
            node.entries.append(entry)
        else:
            slot = self._choose_subtree(node, entry.mbr)
            child = slot.child
            assert child is not None
            overflow = self._insert_rec(child, entry, level)
            slot.mbr = child.mbr()
            if overflow is not None:
                node.entries.append(Entry(mbr=overflow.mbr(), child=overflow))
        node.refresh_bounds()
        if len(node.entries) > self._capacity_of(node):
            return self._split_node(node)
        return None

    def _choose_subtree(self, node: Node, mbr: AABB) -> Entry:
        """Least-enlargement child; ties by volume, then by fill."""
        best: Entry | None = None
        best_key: tuple[float, float, int] | None = None
        for slot in node.entries:
            child = slot.child
            assert child is not None
            key = (slot.mbr.enlargement(mbr), slot.mbr.volume(), len(child.entries))
            if best_key is None or key < best_key:
                best_key = key
                best = slot
        if best is None:
            raise InvariantViolation("internal node with no entries")
        return best

    def _split_node(self, node: Node) -> Node:
        group_a, group_b = self._split_func(node.entries, self._min_fill_of(node))
        node.entries = group_a
        node.refresh_bounds()
        return self._new_node(level=node.level, entries=group_b)

    # -- deletion -----------------------------------------------------------------
    def delete(self, uid: int, mbr: AABB | None = None) -> None:
        """Remove object ``uid``; ``mbr`` (if given) narrows the search."""
        path = self._find_leaf_path(self.root, uid, mbr)
        if path is None:
            raise KeyError(f"uid {uid} not in tree")
        leaf = path[-1]
        leaf.entries = [e for e in leaf.entries if e.uid != uid]
        leaf.refresh_bounds()
        self._size -= 1
        self._condense(path)

    def _find_leaf_path(self, node: Node, uid: int, mbr: AABB | None) -> list[Node] | None:
        if node.is_leaf:
            if any(e.uid == uid for e in node.entries):
                return [node]
            return None
        for slot in node.entries:
            if mbr is not None and not slot.mbr.intersects(mbr):
                continue
            assert slot.child is not None
            sub = self._find_leaf_path(slot.child, uid, mbr)
            if sub is not None:
                return [node, *sub]
        return None

    def _condense(self, path: list[Node]) -> None:
        orphan_leaf_entries: list[Entry] = []
        for i in range(len(path) - 1, 0, -1):
            node = path[i]
            parent = path[i - 1]
            slot = next(s for s in parent.entries if s.child is node)
            if len(node.entries) < self._min_fill_of(node):
                parent.entries.remove(slot)
                orphan_leaf_entries.extend(self._collect_leaf_entries(node))
            else:
                slot.mbr = node.mbr()
            parent.refresh_bounds()
        # Shrink the root while it is an internal node with a single child.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            child = self.root.entries[0].child
            assert child is not None
            self.root = child
        if not self.root.is_leaf and not self.root.entries:
            self.root = self._new_node(level=0)
        for entry in orphan_leaf_entries:
            self._insert_entry(entry, level=0)

    @staticmethod
    def _collect_leaf_entries(node: Node) -> list[Entry]:
        out: list[Entry] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(e.child for e in current.entries if e.child is not None)
        return out

    # -- queries ----------------------------------------------------------------------
    def range_query(self, box: AABB) -> list[int]:
        """All uids whose boxes intersect ``box`` (order unspecified)."""
        results, _ = self.range_query_with_stats(box)
        return results

    def range_query_with_stats(self, box: AABB) -> tuple[list[int], RangeQueryStats]:
        """Range query plus the per-level node-access statistics of Figure 3.

        Each node scan is one batch kernel call over the entry MBRs (the
        node carries an immutable bounds view, rebuilt at every mutation
        site), so the per-entry work runs vectorised under the NumPy
        backend.
        """
        stats = RangeQueryStats()
        results: list[int] = []
        if self._size == 0:
            return results, stats
        stack = [self.root]
        while stack:
            node = stack.pop()
            stats.record_node(node.level)
            entries = node.entries
            stats.entries_tested += len(entries)
            mask = kernels.box_intersects(node.entry_bounds(), box)
            if node.is_leaf:
                for i in kernels.nonzero(mask):
                    uid = entries[i].uid
                    assert uid is not None
                    results.append(uid)
            else:
                for i in kernels.nonzero(mask):
                    child = entries[i].child
                    assert child is not None
                    stack.append(child)
        stats.num_results = len(results)
        return results, stats

    def find_any_in_range(
        self, box: AABB, exclude: Container[int] | None = None
    ) -> tuple[int | None, SeedSearchStats]:
        """Early-exit search for *one* object intersecting ``box``.

        This is FLAT's seeding primitive: unlike a full range query it stops
        at the first hit, so its cost tracks the tree height rather than the
        result size (and is insensitive to overlap-induced multi-path
        descents as long as one path hits).  ``exclude`` filters uids (FLAT
        passes the already-crawled partitions when re-seeding).
        """
        stats = SeedSearchStats()
        if self._size == 0:
            return None, stats
        found = self._find_any_rec(self.root, box, exclude, stats)
        stats.found = found is not None
        return found, stats

    def _find_any_rec(
        self,
        node: Node,
        box: AABB,
        exclude: Container[int] | None,
        stats: SeedSearchStats,
    ) -> int | None:
        stats.nodes_visited += 1
        for entry in node.entries:
            stats.entries_tested += 1
            if not entry.mbr.intersects(box):
                continue
            if node.is_leaf:
                assert entry.uid is not None
                if exclude is None or entry.uid not in exclude:
                    return entry.uid
            else:
                assert entry.child is not None
                hit = self._find_any_rec(entry.child, box, exclude, stats)
                if hit is not None:
                    return hit
        return None

    def knn(self, point: Vec3, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest objects to ``point`` as ``(uid, distance)`` pairs.

        Best-first traversal with a priority queue on MBR distance, which is
        optimal in node accesses for the given tree.
        """
        results, _ = self.knn_with_stats(point, k)
        return results

    def knn_with_stats(
        self, point: Vec3, k: int
    ) -> tuple[list[tuple[int, float]], KNNQueryStats]:
        """k-nearest-neighbour search plus node/entry access counters.

        The answer is canonical — the ``k`` smallest by ``(distance,
        uid)``.  The frontier orders nodes *before* objects at equal
        distance (an unexplored equal-distance subtree may hold a
        smaller-uid tie) and equal-distance objects by uid, so the result
        never depends on insertion order.
        """
        stats = KNNQueryStats()
        if k < 1 or self._size == 0:
            return [], stats
        counter = itertools.count()
        # Heap items: (distance, is_object, uid-or-tiebreak, node, uid).
        heap: list[tuple[float, int, int, Node | None, int | None]] = [
            (0.0, 0, next(counter), self.root, None)
        ]
        results: list[tuple[int, float]] = []
        while heap and len(results) < k:
            dist, _, _, node, uid = heapq.heappop(heap)
            if node is None:
                assert uid is not None
                results.append((uid, dist))
                continue
            stats.nodes_visited += 1
            entries = node.entries
            stats.entries_tested += len(entries)
            distances = kernels.point_box_distance(node.entry_bounds(), point)
            if node.is_leaf:
                for entry, entry_dist in zip(entries, distances):
                    heapq.heappush(heap, (float(entry_dist), 1, entry.uid, None, entry.uid))
            else:
                for entry, entry_dist in zip(entries, distances):
                    heapq.heappush(
                        heap, (float(entry_dist), 0, next(counter), entry.child, None)
                    )
        stats.num_results = len(results)
        return results, stats

    # -- invariants ------------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvariantViolation` if any structural invariant fails."""
        seen_uids: set[int] = set()
        leaf_entries = self._validate_rec(self.root, is_root=True, seen_uids=seen_uids)
        if leaf_entries != self._size:
            raise InvariantViolation(
                f"size mismatch: tree says {self._size}, counted {leaf_entries}"
            )

    def _validate_rec(self, node: Node, is_root: bool, seen_uids: set[int]) -> int:
        cap = self._capacity_of(node)
        if len(node.entries) > cap:
            raise InvariantViolation(f"node {node.node_id} overflows: {len(node.entries)} > {cap}")
        min_fill = self._min_fill_of(node)
        if self._maintains_min_fill and not is_root and len(node.entries) < min_fill:
            raise InvariantViolation(
                f"node {node.node_id} underfull: {len(node.entries)} < {min_fill}"
            )
        if not is_root and not node.entries:
            raise InvariantViolation(f"non-root node {node.node_id} is empty")
        if is_root and not node.is_leaf and len(node.entries) < 2:
            raise InvariantViolation("internal root must have >= 2 entries")
        count = 0
        for entry in node.entries:
            if node.is_leaf:
                if entry.uid is None:
                    raise InvariantViolation("leaf entry without uid")
                if entry.uid in seen_uids:
                    raise InvariantViolation(f"duplicate uid {entry.uid}")
                seen_uids.add(entry.uid)
                count += 1
            else:
                child = entry.child
                if child is None:
                    raise InvariantViolation("internal entry without child")
                if child.level != node.level - 1:
                    raise InvariantViolation(
                        f"level break: node {node.node_id} level {node.level}, "
                        f"child {child.node_id} level {child.level}"
                    )
                if not entry.mbr.contains_box(child.mbr()):
                    raise InvariantViolation(
                        f"entry MBR of node {node.node_id} does not cover child {child.node_id}"
                    )
                count += self._validate_rec(child, is_root=False, seen_uids=seen_uids)
        return count

    # -- diagnostics --------------------------------------------------------------------
    def overlap_factor(self) -> float:
        """Mean pairwise sibling MBR overlap volume, normalised by node volume.

        A direct measure of why range queries degrade on dense data: sibling
        subtrees that cover the same space must all be descended.
        """
        total_overlap = 0.0
        total_volume = 0.0
        for node in self.iter_nodes():
            if node.is_leaf:
                continue
            entries = node.entries
            for i in range(len(entries)):
                total_volume += entries[i].mbr.volume()
                for j in range(i + 1, len(entries)):
                    total_overlap += entries[i].mbr.overlap_volume(entries[j].mbr)
        if total_volume == 0.0:
            return 0.0
        return total_overlap / total_volume
