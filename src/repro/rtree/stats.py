"""Query statistics — the live counters the demo screens display."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RangeQueryStats", "SeedSearchStats", "KNNQueryStats"]


@dataclass
class RangeQueryStats:
    """Counters for one R-tree range query.

    ``nodes_per_level`` maps tree level (0 = leaf) to the number of nodes
    read at that level; the paper's Figure 3 contrasts exactly this against
    FLAT ("due to overlap more nodes are retrieved on higher levels").
    """

    nodes_visited: int = 0
    nodes_per_level: dict[int, int] = field(default_factory=dict)
    entries_tested: int = 0
    num_results: int = 0

    def record_node(self, level: int) -> None:
        self.nodes_visited += 1
        self.nodes_per_level[level] = self.nodes_per_level.get(level, 0) + 1

    @property
    def leaf_nodes_visited(self) -> int:
        return self.nodes_per_level.get(0, 0)

    @property
    def internal_nodes_visited(self) -> int:
        return self.nodes_visited - self.leaf_nodes_visited

    @property
    def pages_read(self) -> int:
        """One node occupies one page in the modelled layout."""
        return self.nodes_visited


@dataclass
class KNNQueryStats:
    """Counters for one best-first k-nearest-neighbour search."""

    nodes_visited: int = 0
    entries_tested: int = 0
    num_results: int = 0


@dataclass
class SeedSearchStats:
    """Counters for FLAT's early-exit 'find any object in range' descent."""

    nodes_visited: int = 0
    entries_tested: int = 0
    found: bool = False
