"""Bulk loading: Sort-Tile-Recursive (STR) and Hilbert packing.

STR (Leutenegger, Lopez & Edgington, ICDE'97 — reference [9] of the paper)
is the bulk loading FLAT uses for its seed index, and the loader for the
baseline R-tree in the demo.  Hilbert packing sorts by the curve key of box
centres and chunks sequentially; it is used for ablations and for the object
store's page clustering counterpart.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

from repro.errors import IndexError_
from repro.geometry.aabb import AABB
from repro.hilbert.curve import HilbertEncoder3D
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree

__all__ = ["str_bulk_load", "hilbert_bulk_load", "str_chunks"]

T = TypeVar("T")


def str_chunks(
    items: Sequence[T],
    capacity: int,
    center_of: Callable[[T], tuple[float, float, float]],
) -> list[list[T]]:
    """Partition ``items`` into chunks of at most ``capacity`` by 3-D STR.

    Sort by x-centre into vertical slabs, each slab by y into runs, each run
    by z into final tiles.  Consecutive tiles are spatially adjacent, which
    is what gives STR-packed nodes their low overlap.
    """
    if capacity < 1:
        raise IndexError_("chunk capacity must be >= 1")
    n = len(items)
    if n == 0:
        return []
    if n <= capacity:
        return [list(items)]
    num_tiles = math.ceil(n / capacity)
    slabs_x = math.ceil(num_tiles ** (1.0 / 3.0))
    per_slab = math.ceil(n / slabs_x)
    by_x = sorted(items, key=lambda it: center_of(it)[0])

    chunks: list[list[T]] = []
    for sx in range(0, n, per_slab):
        slab = by_x[sx : sx + per_slab]
        tiles_in_slab = math.ceil(len(slab) / capacity)
        runs_y = math.ceil(math.sqrt(tiles_in_slab))
        per_run = math.ceil(len(slab) / runs_y)
        by_y = sorted(slab, key=lambda it: center_of(it)[1])
        for sy in range(0, len(slab), per_run):
            run = by_y[sy : sy + per_run]
            by_z = sorted(run, key=lambda it: center_of(it)[2])
            for sz in range(0, len(run), capacity):
                chunks.append(by_z[sz : sz + capacity])
    return chunks


def _entry_center(entry: Entry) -> tuple[float, float, float]:
    c = entry.mbr.center()
    return (c.x, c.y, c.z)


def _build_levels(
    leaves: list[Node],
    fanout: int,
    pack: Callable[[Sequence[Entry], int], list[list[Entry]]],
) -> Node:
    """Stack packed levels on top of ``leaves`` until a single root remains."""
    nodes = leaves
    while len(nodes) > 1:
        entries = [Entry(mbr=node.mbr(), child=node) for node in nodes]
        groups = pack(entries, fanout)
        nodes = [Node(level=nodes[0].level + 1, entries=group) for group in groups]
    return nodes[0]


def str_bulk_load(
    items: Sequence[tuple[int, AABB]],
    max_entries: int = 16,
    min_entries: int | None = None,
    leaf_capacity: int | None = None,
) -> RTree:
    """Build an R-tree over ``(uid, mbr)`` pairs with STR packing.

    ``leaf_capacity`` models the data-page fan-out when it differs from the
    internal fan-out ``max_entries``.
    """
    if not items:
        return RTree(max_entries=max_entries, min_entries=min_entries, leaf_capacity=leaf_capacity)
    leaf_cap = leaf_capacity if leaf_capacity is not None else max_entries

    leaf_entries = [Entry(mbr=mbr, uid=uid) for uid, mbr in items]
    leaf_groups = str_chunks(leaf_entries, leaf_cap, _entry_center)
    leaves = [Node(level=0, entries=group) for group in leaf_groups]
    root = _build_levels(
        leaves,
        max_entries,
        lambda entries, cap: str_chunks(entries, cap, _entry_center),
    )
    return RTree._from_root(
        root,
        size=len(items),
        max_entries=max_entries,
        min_entries=min_entries,
        leaf_capacity=leaf_capacity,
    )


def hilbert_bulk_load(
    items: Sequence[tuple[int, AABB]],
    max_entries: int = 16,
    min_entries: int | None = None,
    leaf_capacity: int | None = None,
    hilbert_order: int = 10,
) -> RTree:
    """Build an R-tree by sorting on the Hilbert key of box centres."""
    if not items:
        return RTree(max_entries=max_entries, min_entries=min_entries, leaf_capacity=leaf_capacity)
    leaf_cap = leaf_capacity if leaf_capacity is not None else max_entries

    world = AABB.union_all(mbr for _, mbr in items)
    encoder = HilbertEncoder3D(world, order=hilbert_order)
    keys = encoder.keys_of_boxes([mbr for _, mbr in items])
    ordered = [item for _, _, item in sorted(zip(keys, range(len(keys)), items))]

    leaf_entries = [Entry(mbr=mbr, uid=uid) for uid, mbr in ordered]
    leaves = [
        Node(level=0, entries=leaf_entries[i : i + leaf_cap])
        for i in range(0, len(leaf_entries), leaf_cap)
    ]

    def sequential_pack(entries: Sequence[Entry], cap: int) -> list[list[Entry]]:
        return [list(entries[i : i + cap]) for i in range(0, len(entries), cap)]

    root = _build_levels(leaves, max_entries, sequential_pack)
    return RTree._from_root(
        root,
        size=len(items),
        max_entries=max_entries,
        min_entries=min_entries,
        leaf_capacity=leaf_capacity,
    )
