"""R-tree nodes and entries.

A node occupies exactly one simulated disk page (the textbook layout), so
"nodes visited" equals "index pages read".  ``Entry`` doubles as the leaf
entry (``uid`` set, ``child`` None) and the internal entry (``child`` set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import InvariantViolation
from repro.geometry.aabb import AABB
from repro.storage.arena import BoundsView

__all__ = ["Entry", "Node", "ENTRY_BYTES", "NODE_HEADER_BYTES"]

#: Modelled bytes per entry: 6 float64 bounds + 8-byte pointer/uid.
ENTRY_BYTES = 56
#: Modelled per-node header bytes.
NODE_HEADER_BYTES = 24


@dataclass(slots=True)
class Entry:
    """One slot of a node: a box plus either a child node or an object uid."""

    mbr: AABB
    child: "Node | None" = None
    uid: int | None = None

    def __post_init__(self) -> None:
        if (self.child is None) == (self.uid is None):
            raise InvariantViolation("entry must reference exactly one of child/uid")

    @property
    def is_leaf_entry(self) -> bool:
        return self.uid is not None


@dataclass(slots=True)
class Node:
    """An R-tree node; ``level`` 0 is a leaf, the root has the highest level."""

    level: int
    entries: list[Entry] = field(default_factory=list)
    node_id: int = -1
    # Immutable column view of the entry MBRs.  Every mutation site in
    # rtree.tree eagerly rebuilds it (refresh_bounds), so a view in hand is
    # always the node's current content — no invalidation protocol exists.
    bounds: BoundsView | None = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def refresh_bounds(self) -> None:
        """Rebuild the entry-bounds view after a structural or MBR mutation."""
        self.bounds = BoundsView(e.mbr.bounds() for e in self.entries)

    def entry_bounds(self) -> Any:
        """Entry MBRs packed for :mod:`repro.kernels` (memoized per backend)."""
        view = self.bounds
        if view is None:
            view = BoundsView(e.mbr.bounds() for e in self.entries)
            self.bounds = view
        return view.packed()

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def mbr(self) -> AABB:
        """Tight box over the node's entries (node must be non-empty)."""
        if not self.entries:
            raise InvariantViolation(f"node {self.node_id} is empty, has no MBR")
        return AABB.union_all(e.mbr for e in self.entries)

    def byte_size(self) -> int:
        return NODE_HEADER_BYTES + ENTRY_BYTES * len(self.entries)
