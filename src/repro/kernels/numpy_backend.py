"""NumPy-vectorised implementation of the kernel API.

Every function mirrors :mod:`repro.kernels.python_backend` elementwise (the
parity tests enforce it): the box predicates reproduce the closed-box
semantics of :class:`repro.geometry.aabb.AABB`, the capsule tests reproduce
the clamped Eberly closest-approach of :mod:`repro.geometry.distance`, and
:func:`hilbert_keys` is Skilling's transpose algorithm with the per-point
loop turned into array ops (the bit-level loops run over the *order*, not
over the batch).

Packed representations: a bounds batch is an ``(n, 6)`` float64 array with
:meth:`AABB.bounds` column order; a segment batch is a tuple
``(p0s, p1s, radii)`` of ``(n, 3)``/``(n,)`` arrays.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

_EPS = 1e-12
SegPack = tuple[np.ndarray, np.ndarray, np.ndarray]


# -- packing -------------------------------------------------------------------
def pack_boxes(boxes: Sequence[Any]) -> np.ndarray:
    if not boxes:
        return np.empty((0, 6), dtype=float)
    return np.array([b.bounds() for b in boxes], dtype=float)


def pack_bounds(bounds: Sequence[Any]) -> np.ndarray:
    if not len(bounds):
        return np.empty((0, 6), dtype=float)
    return np.asarray(bounds, dtype=float).reshape(len(bounds), 6)


def pack_objects(objects: Sequence[Any]) -> np.ndarray:
    if not objects:
        return np.empty((0, 6), dtype=float)
    return np.array([o.aabb.bounds() for o in objects], dtype=float)


def pack_segments(segments: Sequence[Any]) -> SegPack:
    if not segments:
        return (np.empty((0, 3)), np.empty((0, 3)), np.empty(0))
    p0s = np.array([(s.p0.x, s.p0.y, s.p0.z) for s in segments], dtype=float)
    p1s = np.array([(s.p1.x, s.p1.y, s.p1.z) for s in segments], dtype=float)
    radii = np.array([s.radius for s in segments], dtype=float)
    return (p0s, p1s, radii)


def batch_len(packed: Any) -> int:
    return len(packed)


def slice_packed(packed: np.ndarray, start: int, stop: int) -> np.ndarray:
    return packed[start:stop]


# -- batch predicates and distances -------------------------------------------
def box_intersects(packed: np.ndarray, box: Any, eps: float = 0.0) -> np.ndarray:
    # Column-at-a-time with in-place combination: one temporary per axis
    # test, no (n, 3) intermediates — measurably cheaper on the small
    # batches the index scans issue.
    mask = packed[:, 0] <= box.max_x + eps
    mask &= packed[:, 3] >= box.min_x - eps
    mask &= packed[:, 1] <= box.max_y + eps
    mask &= packed[:, 4] >= box.min_y - eps
    mask &= packed[:, 2] <= box.max_z + eps
    mask &= packed[:, 5] >= box.min_z - eps
    return mask


def box_contains(packed: np.ndarray, box: Any) -> np.ndarray:
    mask = packed[:, 0] >= box.min_x
    mask &= packed[:, 1] >= box.min_y
    mask &= packed[:, 2] >= box.min_z
    mask &= packed[:, 3] <= box.max_x
    mask &= packed[:, 4] <= box.max_y
    mask &= packed[:, 5] <= box.max_z
    return mask


def point_box_distance(packed: np.ndarray, point: Any) -> np.ndarray:
    p = np.array([float(point[0]), float(point[1]), float(point[2])])
    below = packed[:, :3] - p
    above = p - packed[:, 3:]
    gaps = np.maximum(np.maximum(below, above), 0.0)
    return np.sqrt((gaps * gaps).sum(axis=1))


def box_box_distance(packed: np.ndarray, box: Any) -> np.ndarray:
    lo = np.array([box.min_x, box.min_y, box.min_z])
    hi = np.array([box.max_x, box.max_y, box.max_z])
    below = lo - packed[:, 3:]
    above = packed[:, :3] - hi
    gaps = np.maximum(np.maximum(below, above), 0.0)
    return np.sqrt((gaps * gaps).sum(axis=1))


def _pair_axis_distances(
    p0a: np.ndarray, p1a: np.ndarray, p0b: np.ndarray, p1b: np.ndarray
) -> np.ndarray:
    """Clamped closest-approach distance for n aligned segment pairs.

    Vectorisation of :func:`repro.geometry.distance.segment_segment_closest`
    with identical branch structure, so results agree to float precision.
    """
    d1 = p1a - p0a
    d2 = p1b - p0b
    r = p0a - p0b
    a = (d1 * d1).sum(axis=1)
    e = (d2 * d2).sum(axis=1)
    f = (d2 * r).sum(axis=1)
    c = (d1 * r).sum(axis=1)
    b = (d1 * d2).sum(axis=1)

    a_degenerate = a <= _EPS
    e_degenerate = e <= _EPS
    safe_a = np.where(a_degenerate, 1.0, a)
    safe_e = np.where(e_degenerate, 1.0, e)

    # General case: clamp s from the denominator, then clamp t and re-derive s.
    denom = a * e - b * b
    safe_denom = np.where(denom > _EPS, denom, 1.0)
    s = np.where(denom > _EPS, np.clip((b * f - c * e) / safe_denom, 0.0, 1.0), 0.0)
    t = (b * s + f) / safe_e
    t_low = t < 0.0
    t_high = t > 1.0
    t = np.clip(t, 0.0, 1.0)
    s = np.where(t_low, np.clip(-c / safe_a, 0.0, 1.0), s)
    s = np.where(t_high, np.clip((b - c) / safe_a, 0.0, 1.0), s)

    # Degenerate cases override the general solution.
    s = np.where(a_degenerate, 0.0, s)
    t = np.where(a_degenerate, np.clip(f / safe_e, 0.0, 1.0), t)
    t = np.where(e_degenerate, 0.0, t)
    s = np.where(e_degenerate & ~a_degenerate, np.clip(-c / safe_a, 0.0, 1.0), s)
    s = np.where(a_degenerate & e_degenerate, 0.0, s)
    t = np.where(a_degenerate & e_degenerate, 0.0, t)

    closest_a = p0a + s[:, None] * d1
    closest_b = p0b + t[:, None] * d2
    gap = closest_a - closest_b
    return np.sqrt((gap * gap).sum(axis=1))


def segment_distances(segpack: SegPack, q0: Any, q1: Any) -> np.ndarray:
    p0s, p1s, _ = segpack
    n = len(p0s)
    qa = np.broadcast_to(
        np.array([float(q0[0]), float(q0[1]), float(q0[2])]), (n, 3)
    )
    qb = np.broadcast_to(
        np.array([float(q1[0]), float(q1[1]), float(q1[2])]), (n, 3)
    )
    return _pair_axis_distances(p0s, p1s, qa, qb)


def capsule_pairs_touch(segpack_a: SegPack, segpack_b: SegPack, eps: float = 0.0) -> np.ndarray:
    p0a, p1a, ra = segpack_a
    p0b, p1b, rb = segpack_b
    distances = _pair_axis_distances(p0a, p1a, p0b, p1b)
    return distances <= ra + rb + eps + 1e-12


def _expand_windows(
    pivot: np.ndarray,
    other: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    eps: float,
    pivot_is_a: bool,
    chunk: int = 1 << 20,
) -> tuple[list[np.ndarray], list[np.ndarray], int]:
    """Flatten per-pivot index windows and y/z-filter them in bulk.

    ``lo``/``hi`` delimit each pivot's candidate window in ``other``; the
    windows are expanded into flat (pivot, other) index pairs with the
    repeat/arange trick, then masked chunk-wise so the transient gather
    arrays stay bounded.  ``pivot_is_a`` keeps the eps expansion on the
    A side in both sweep directions — bitwise identical to the scalar
    backend's comparisons.
    """
    counts = np.maximum(hi - lo, 0)  # complementary bounds can cross on empty windows
    total = int(counts.sum())
    if total == 0:
        return [], [], 0
    piv_idx = np.repeat(np.arange(len(counts)), counts)
    window_starts = np.repeat(lo, counts)
    window_bases = np.repeat(np.cumsum(counts) - counts, counts)
    oth_idx = window_starts + (np.arange(total) - window_bases)
    # Contiguous column copies make the flat gathers below ~3x cheaper
    # than strided 2-D advanced indexing on the (n, 6) packs.
    piv_min_y = np.ascontiguousarray(pivot[:, 1])
    piv_min_z = np.ascontiguousarray(pivot[:, 2])
    piv_max_y = np.ascontiguousarray(pivot[:, 4])
    piv_max_z = np.ascontiguousarray(pivot[:, 5])
    oth_min_y = np.ascontiguousarray(other[:, 1])
    oth_min_z = np.ascontiguousarray(other[:, 2])
    oth_max_y = np.ascontiguousarray(other[:, 4])
    oth_max_z = np.ascontiguousarray(other[:, 5])
    keep_piv: list[np.ndarray] = []
    keep_oth: list[np.ndarray] = []
    for start in range(0, total, chunk):
        pi = piv_idx[start : start + chunk]
        oi = oth_idx[start : start + chunk]
        if pivot_is_a:
            mask = piv_min_y[pi] - eps <= oth_max_y[oi]
            mask &= oth_min_y[oi] <= piv_max_y[pi] + eps
            mask &= piv_min_z[pi] - eps <= oth_max_z[oi]
            mask &= oth_min_z[oi] <= piv_max_z[pi] + eps
        else:
            mask = oth_min_y[oi] - eps <= piv_max_y[pi]
            mask &= piv_min_y[pi] <= oth_max_y[oi] + eps
            mask &= oth_min_z[oi] - eps <= piv_max_z[pi]
            mask &= piv_min_z[pi] <= oth_max_z[oi] + eps
        keep_piv.append(pi[mask])
        keep_oth.append(oi[mask])
    return keep_piv, keep_oth, total


def xsorted_overlap_pairs(
    packed_a: np.ndarray, packed_b: np.ndarray, eps: float = 0.0
) -> tuple[list[int], list[int], int]:
    """All eps-expanded AABB-overlap pairs of two min_x-sorted batches.

    Same two-sided enumeration as the scalar backend — side one windows are
    found with two vectorised ``searchsorted`` calls per side and the y/z
    filter runs over the flattened windows — so indices, order and the
    ``tested`` count match the scalar sweep exactly.
    """
    n_a, n_b = len(packed_a), len(packed_b)
    if n_a == 0 or n_b == 0:
        return [], [], 0
    min_x_a = np.ascontiguousarray(packed_a[:, 0])
    min_x_b = np.ascontiguousarray(packed_b[:, 0])

    lo1 = np.searchsorted(min_x_b, min_x_a - eps, side="left")
    hi1 = np.searchsorted(min_x_b, packed_a[:, 3] + eps, side="right")
    a1, b1, tested_1 = _expand_windows(packed_a, packed_b, lo1, hi1, eps, pivot_is_a=True)

    # Side two's lower bound bisects the same rounded a.min_x - eps values
    # side one compared against, so the two sides are exact complements
    # (no pair can fall into a float rounding gap or be reported twice).
    lo2 = np.searchsorted(min_x_a - eps, min_x_b, side="right")
    hi2 = np.searchsorted(min_x_a, packed_b[:, 3] + eps, side="right")
    b2, a2, tested_2 = _expand_windows(packed_b, packed_a, lo2, hi2, eps, pivot_is_a=False)

    out_a = np.concatenate(a1 + a2) if a1 or a2 else np.empty(0, dtype=np.int64)
    out_b = np.concatenate(b1 + b2) if b1 or b2 else np.empty(0, dtype=np.int64)
    return out_a.tolist(), out_b.tolist(), tested_1 + tested_2


def box_overlap_pairs(
    packed_a: np.ndarray, packed_b: np.ndarray, eps: float = 0.0
) -> tuple[list[int], list[int]]:
    """All eps-expanded AABB-overlap pairs of two (unsorted) batches.

    One broadcast intersect matrix instead of one :func:`box_intersects`
    call per B box — the batched TOUCH probe filter.  Pair order is
    B-major (ascending A index within each B), matching the scalar
    backend exactly; each elementwise test applies the same float
    arithmetic as :func:`box_intersects`.
    """
    if len(packed_a) == 0 or len(packed_b) == 0:
        return [], []
    mask = packed_a[None, :, 0] <= (packed_b[:, 3] + eps)[:, None]
    mask &= packed_a[None, :, 3] >= (packed_b[:, 0] - eps)[:, None]
    mask &= packed_a[None, :, 1] <= (packed_b[:, 4] + eps)[:, None]
    mask &= packed_a[None, :, 4] >= (packed_b[:, 1] - eps)[:, None]
    mask &= packed_a[None, :, 2] <= (packed_b[:, 5] + eps)[:, None]
    mask &= packed_a[None, :, 5] >= (packed_b[:, 2] - eps)[:, None]
    indices_b, indices_a = np.nonzero(mask)
    return indices_a.tolist(), indices_b.tolist()


def hilbert_keys(coords: Sequence[Sequence[int]], order: int) -> np.ndarray:
    from repro.errors import GeometryError
    from repro.kernels import python_backend

    if len(coords) == 0:
        return np.empty(0, dtype=np.int64)
    if order < 1:
        raise GeometryError("hilbert order must be >= 1")
    work = np.asarray(coords, dtype=np.int64).copy()
    if work.ndim != 2:
        work = work.reshape(len(coords), -1)
    n, dims = work.shape
    if order * dims > 62:
        # Keys would overflow int64; the scalar path has arbitrary precision.
        return python_backend.hilbert_keys(coords, order)
    limit = 1 << order
    if bool((work < 0).any()) or bool((work >= limit).any()):
        raise GeometryError(f"coordinate outside [0, {limit}) for order {order}")
    if dims == 1:
        return work[:, 0].copy()

    # Skilling axes->transpose, with the bit loops outside the batch.
    m = 1 << (order - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(dims):
            high = (work[:, i] & q) != 0
            work[high, 0] ^= p
            low = ~high
            t = (work[low, 0] ^ work[low, i]) & p
            work[low, 0] ^= t
            work[low, i] ^= t
        q >>= 1
    for i in range(1, dims):
        work[:, i] ^= work[:, i - 1]
    t = np.zeros(n, dtype=np.int64)
    q = m
    while q > 1:
        hit = (work[:, dims - 1] & q) != 0
        t[hit] ^= q - 1
        q >>= 1
    work ^= t[:, None]

    # Interleave the transposed form into one key per point.
    keys = np.zeros(n, dtype=np.int64)
    for bit in range(order - 1, -1, -1):
        for axis in range(dims):
            keys = (keys << 1) | ((work[:, axis] >> bit) & 1)
    return keys


# -- mask utilities ------------------------------------------------------------
def nonzero(mask: np.ndarray) -> list[int]:
    return np.nonzero(mask)[0].tolist()


def count(mask: np.ndarray) -> int:
    return int(np.count_nonzero(mask))
