"""Pure-Python scalar implementation of the kernel API.

This backend is the portable fallback *and* the semantic reference: every
function is a plain loop over the packed operands applying exactly the
arithmetic of the scalar :mod:`repro.geometry` modules.  The NumPy backend
is parity-tested elementwise against it.

Packed representations: a bounds batch is a ``list`` of 6-tuples
``(min_x, min_y, min_z, max_x, max_y, max_z)``; a segment batch is a tuple
``(p0s, p1s, radii)`` of parallel lists (3-tuples for the endpoints).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.geometry.distance import segment_segment_distance
from repro.geometry.vec import Vec3
from repro.hilbert.curve import hilbert_encode

Bounds = tuple[float, float, float, float, float, float]
Point = tuple[float, float, float]
SegPack = tuple[list[Point], list[Point], list[float]]


# -- packing -------------------------------------------------------------------
def pack_boxes(boxes: Sequence[Any]) -> list[Bounds]:
    return [b.bounds() for b in boxes]


def pack_bounds(bounds: Sequence[Bounds]) -> list[Bounds]:
    return [tuple(float(v) for v in b) for b in bounds]  # type: ignore[misc]


def pack_objects(objects: Sequence[Any]) -> list[Bounds]:
    return [o.aabb.bounds() for o in objects]


def pack_segments(segments: Sequence[Any]) -> SegPack:
    p0s = [(s.p0.x, s.p0.y, s.p0.z) for s in segments]
    p1s = [(s.p1.x, s.p1.y, s.p1.z) for s in segments]
    radii = [float(s.radius) for s in segments]
    return (p0s, p1s, radii)


def batch_len(packed: Sequence[Any]) -> int:
    return len(packed)


def slice_packed(packed: list[Any], start: int, stop: int) -> list[Any]:
    return packed[start:stop]


# -- batch predicates and distances -------------------------------------------
def box_intersects(packed: list[Bounds], box: Any, eps: float = 0.0) -> list[bool]:
    q_min_x = box.min_x - eps
    q_min_y = box.min_y - eps
    q_min_z = box.min_z - eps
    q_max_x = box.max_x + eps
    q_max_y = box.max_y + eps
    q_max_z = box.max_z + eps
    return [
        b[0] <= q_max_x
        and q_min_x <= b[3]
        and b[1] <= q_max_y
        and q_min_y <= b[4]
        and b[2] <= q_max_z
        and q_min_z <= b[5]
        for b in packed
    ]


def box_contains(packed: list[Bounds], box: Any) -> list[bool]:
    return [
        b[0] >= box.min_x
        and b[1] >= box.min_y
        and b[2] >= box.min_z
        and b[3] <= box.max_x
        and b[4] <= box.max_y
        and b[5] <= box.max_z
        for b in packed
    ]


def point_box_distance(packed: list[Bounds], point: Any) -> list[float]:
    x, y, z = float(point[0]), float(point[1]), float(point[2])
    out = []
    for b in packed:
        dx = max(b[0] - x, 0.0, x - b[3])
        dy = max(b[1] - y, 0.0, y - b[4])
        dz = max(b[2] - z, 0.0, z - b[5])
        out.append(math.sqrt(dx * dx + dy * dy + dz * dz))
    return out


def box_box_distance(packed: list[Bounds], box: Any) -> list[float]:
    out = []
    for b in packed:
        dx = max(box.min_x - b[3], 0.0, b[0] - box.max_x)
        dy = max(box.min_y - b[4], 0.0, b[1] - box.max_y)
        dz = max(box.min_z - b[5], 0.0, b[2] - box.max_z)
        out.append(math.sqrt(dx * dx + dy * dy + dz * dz))
    return out


def segment_distances(segpack: SegPack, q0: Any, q1: Any) -> list[float]:
    p0s, p1s, _ = segpack
    qa = Vec3(float(q0[0]), float(q0[1]), float(q0[2]))
    qb = Vec3(float(q1[0]), float(q1[1]), float(q1[2]))
    return [
        segment_segment_distance(Vec3(*p0), Vec3(*p1), qa, qb)
        for p0, p1 in zip(p0s, p1s)
    ]


def capsule_pairs_touch(segpack_a: SegPack, segpack_b: SegPack, eps: float = 0.0) -> list[bool]:
    p0a, p1a, ra = segpack_a
    p0b, p1b, rb = segpack_b
    out = []
    for i in range(len(p0a)):
        distance = segment_segment_distance(
            Vec3(*p0a[i]), Vec3(*p1a[i]), Vec3(*p0b[i]), Vec3(*p1b[i])
        )
        out.append(distance <= ra[i] + rb[i] + eps + 1e-12)
    return out


def xsorted_overlap_pairs(
    packed_a: list[Bounds], packed_b: list[Bounds], eps: float = 0.0
) -> tuple[list[int], list[int], int]:
    """All eps-expanded AABB-overlap pairs of two min_x-sorted batches.

    Two-sided enumeration equivalent to the classic plane-sweep merge: side
    one scans, for every ``a``, the ``b`` window with
    ``a.min_x - eps <= b.min_x <= a.max_x + eps``; side two scans, for every
    ``b``, the ``a`` window with ``a.min_x - eps > b.min_x`` (the exact
    complement of side one's membership test — comparing against the same
    rounded ``a.min_x - eps`` value, so no pair can fall into a float
    rounding gap or be reported twice) and ``a.min_x <= b.max_x + eps``.
    Returns ``(indices_a, indices_b, tested)`` where ``tested`` counts every
    candidate whose y/z overlap was checked — the sweep's comparison count.
    """
    n_a, n_b = len(packed_a), len(packed_b)
    out_a: list[int] = []
    out_b: list[int] = []
    if n_a == 0 or n_b == 0:
        return out_a, out_b, 0
    from bisect import bisect_left, bisect_right

    min_x_a = [a[0] for a in packed_a]
    min_x_b = [b[0] for b in packed_b]
    # Non-decreasing because x - eps is monotone in x; bisecting this array
    # keeps side two bitwise complementary to side one's lower bound.
    shifted_min_x_a = [x - eps for x in min_x_a]
    tested = 0
    for i, a in enumerate(packed_a):
        lo = bisect_left(min_x_b, a[0] - eps)
        hi = bisect_right(min_x_b, a[3] + eps)
        for j in range(lo, hi):
            b = packed_b[j]
            tested += 1
            if (
                a[1] - eps <= b[4]
                and b[1] <= a[4] + eps
                and a[2] - eps <= b[5]
                and b[2] <= a[5] + eps
            ):
                out_a.append(i)
                out_b.append(j)
    for j, b in enumerate(packed_b):
        lo = bisect_right(shifted_min_x_a, b[0])
        hi = bisect_right(min_x_a, b[3] + eps)
        for i in range(lo, hi):
            a = packed_a[i]
            tested += 1
            if (
                a[1] - eps <= b[4]
                and b[1] <= a[4] + eps
                and a[2] - eps <= b[5]
                and b[2] <= a[5] + eps
            ):
                out_a.append(i)
                out_b.append(j)
    return out_a, out_b, tested


def box_overlap_pairs(
    packed_a: list[Bounds], packed_b: list[Bounds], eps: float = 0.0
) -> tuple[list[int], list[int]]:
    """All eps-expanded AABB-overlap pairs of two (unsorted) batches.

    Pair order is B-major (ascending A index within each B); each test is
    exactly the :func:`box_intersects` arithmetic, so the pair set equals
    one ``box_intersects`` call per B box.
    """
    out_a: list[int] = []
    out_b: list[int] = []
    for j, b in enumerate(packed_b):
        q_min_x = b[0] - eps
        q_min_y = b[1] - eps
        q_min_z = b[2] - eps
        q_max_x = b[3] + eps
        q_max_y = b[4] + eps
        q_max_z = b[5] + eps
        for i, a in enumerate(packed_a):
            if (
                a[0] <= q_max_x
                and q_min_x <= a[3]
                and a[1] <= q_max_y
                and q_min_y <= a[4]
                and a[2] <= q_max_z
                and q_min_z <= a[5]
            ):
                out_a.append(i)
                out_b.append(j)
    return out_a, out_b


def hilbert_keys(coords: Sequence[Sequence[int]], order: int) -> list[int]:
    return [hilbert_encode(c, order) for c in coords]


# -- mask utilities ------------------------------------------------------------
def nonzero(mask: Sequence[bool]) -> list[int]:
    return [i for i, hit in enumerate(mask) if hit]


def count(mask: Sequence[bool]) -> int:
    return sum(1 for hit in mask if hit)
