"""Batch geometry kernels: one API, a vectorised and a scalar implementation.

The spatial hot paths — R-tree leaf scans, FLAT partition scans, the filter
phases of the join algorithms, Hilbert packing — all reduce to the same few
primitives applied to *many* geometries at once: box-versus-box overlap,
point/box distances, capsule-pair touch tests, curve-key encoding.  This
package exposes those primitives over *packed* operands (arrays of bounds,
points or segment axes) so a consumer performs one call per batch instead of
one Python-level iteration per object.

Two interchangeable backends implement the API:

* :mod:`repro.kernels.numpy_backend` — NumPy-vectorised (the default when
  NumPy imports cleanly),
* :mod:`repro.kernels.python_backend` — pure-Python scalar loops, used as a
  fallback and as the parity/performance reference.

The backend is selected once at import time (override with the
``REPRO_KERNELS`` environment variable, value ``numpy`` or ``python``) and
can be switched at runtime with :func:`set_backend` or scoped with the
:func:`use_backend` context manager — the parity tests and the benchmark
harness run every kernel under both.  Packed operands are backend-specific;
anything cached by a consumer must be keyed by :func:`active_backend` (see
``pack_token``).

Every batch call is counted in :data:`counters`, which is how
``EngineStats.kernel_batches`` knows how much work ran vectorised.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.errors import GeometryError

__all__ = [
    "active_backend",
    "available_backends",
    "set_backend",
    "use_backend",
    "pack_token",
    "counters",
    "KernelCounters",
    "pack_boxes",
    "pack_bounds",
    "pack_objects",
    "pack_segments",
    "batch_len",
    "slice_packed",
    "box_intersects",
    "box_contains",
    "box_overlap_pairs",
    "point_box_distance",
    "box_box_distance",
    "segment_distances",
    "capsule_pairs_touch",
    "xsorted_overlap_pairs",
    "hilbert_keys",
    "nonzero",
    "count",
]

from repro.kernels import python_backend as _python_backend

try:  # pragma: no cover - exercised implicitly on every import
    from repro.kernels import numpy_backend as _numpy_backend
except Exception:  # pragma: no cover - container without a working NumPy
    _numpy_backend = None  # type: ignore[assignment]

_BACKENDS: dict[str, Any] = {"python": _python_backend}
if _numpy_backend is not None:
    _BACKENDS["numpy"] = _numpy_backend


class KernelCounters:
    """Running totals of batch kernel work, kept **per thread**.

    Each thread accumulates (and reads) its own totals, so a
    before/after delta around a query — :func:`repro.engine.executors.timed`
    does exactly this — counts only that thread's kernel calls even while
    the :class:`~repro.service.ShardedEngine` worker pool runs other
    queries concurrently.  ``reset`` clears the calling thread's slot only.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._slots_lock = threading.Lock()
        self._slots: list[list[int]] = []

    def _slot(self) -> list[int]:
        slot = getattr(self._local, "slot", None)
        if slot is None:
            slot = self._local.slot = [0, 0]
            with self._slots_lock:
                self._slots.append(slot)
        return slot

    @property
    def batches(self) -> int:
        return self._slot()[0]

    @property
    def elements(self) -> int:
        return self._slot()[1]

    def add(self, n: int) -> None:
        slot = self._slot()
        slot[0] += 1
        slot[1] += n

    def reset(self) -> None:
        slot = self._slot()
        slot[0] = 0
        slot[1] = 0

    def snapshot(self) -> tuple[int, int]:
        slot = self._slot()
        return (slot[0], slot[1])

    def totals(self) -> tuple[int, int]:
        """``(batches, elements)`` summed across every thread ever seen.

        The cross-thread aggregate the metrics registry exports; exact at
        any quiescent point.  ``reset`` still only clears the calling
        thread's slot, so totals are monotone while any thread works.
        """
        with self._slots_lock:
            return (
                sum(slot[0] for slot in self._slots),
                sum(slot[1] for slot in self._slots),
            )


#: Per-thread batch counters, surfaced per query by the engine executors.
counters = KernelCounters()


def _default_backend_name() -> str:
    requested = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if requested:
        if requested not in _BACKENDS:
            raise GeometryError(
                f"REPRO_KERNELS={requested!r} is not available; "
                f"choose from {sorted(_BACKENDS)}"
            )
        return requested
    return "numpy" if "numpy" in _BACKENDS else "python"


_active_name = _default_backend_name()
_active = _BACKENDS[_active_name]


def active_backend() -> str:
    """Name of the backend currently serving kernel calls."""
    return _active_name


def available_backends() -> tuple[str, ...]:
    """The selectable backend names (always includes ``python``)."""
    return tuple(sorted(_BACKENDS))


def set_backend(name: str) -> None:
    """Switch the active backend (``numpy`` or ``python``)."""
    global _active_name, _active
    if name not in _BACKENDS:
        raise GeometryError(f"unknown kernel backend {name!r}; choose from {sorted(_BACKENDS)}")
    _active_name = name
    _active = _BACKENDS[name]


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scoped backend switch — restores the previous backend on exit."""
    previous = _active_name
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def pack_token() -> str:
    """Cache key for packed operands (packs are backend-specific)."""
    return _active_name


def _record(n: int) -> None:
    counters.add(n)


# -- packing (uncounted: pure layout, no geometry work) -----------------------
def pack_boxes(boxes: Sequence[Any]) -> Any:
    """Pack AABBs into the backend's native bounds batch."""
    return _active.pack_boxes(boxes)


def pack_bounds(bounds: Sequence[tuple[float, float, float, float, float, float]]) -> Any:
    """Pack raw ``(min_x, min_y, min_z, max_x, max_y, max_z)`` tuples."""
    return _active.pack_bounds(bounds)


def pack_objects(objects: Sequence[Any]) -> Any:
    """Pack the AABBs of spatial objects into a bounds batch."""
    return _active.pack_objects(objects)


def pack_segments(segments: Sequence[Any]) -> Any:
    """Pack capsule segments into ``(p0s, p1s, radii)`` batches."""
    return _active.pack_segments(segments)


def batch_len(packed: Any) -> int:
    """Number of elements in a packed bounds batch."""
    return _active.batch_len(packed)


def slice_packed(packed: Any, start: int, stop: int) -> Any:
    """Contiguous sub-batch ``[start:stop)`` of a packed bounds batch."""
    return _active.slice_packed(packed, start, stop)


# -- batch predicates and distances -------------------------------------------
def box_intersects(packed: Any, box: Any, eps: float = 0.0) -> Any:
    """Mask: which packed boxes intersect ``box`` (each expanded by ``eps``)?

    Matches :meth:`repro.geometry.aabb.AABB.intersects_expanded` applied
    per element (closed boxes: touching counts as intersecting).
    """
    _record(_active.batch_len(packed))
    return _active.box_intersects(packed, box, eps)


def box_contains(packed: Any, box: Any) -> Any:
    """Mask: which packed boxes lie entirely inside ``box``?"""
    _record(_active.batch_len(packed))
    return _active.box_contains(packed, box)


def point_box_distance(packed: Any, point: Any) -> Any:
    """Per-box Euclidean distance from ``point`` (0 inside the box)."""
    _record(_active.batch_len(packed))
    return _active.point_box_distance(packed, point)


def box_box_distance(packed: Any, box: Any) -> Any:
    """Per-box minimum distance to ``box`` (0 when intersecting)."""
    _record(_active.batch_len(packed))
    return _active.box_box_distance(packed, box)


def segment_distances(segpack: Any, q0: Any, q1: Any) -> Any:
    """Axis distances from every packed segment to the one segment ``q0q1``."""
    _record(_active.batch_len(segpack[0]))
    return _active.segment_distances(segpack, q0, q1)


def capsule_pairs_touch(segpack_a: Any, segpack_b: Any, eps: float = 0.0) -> Any:
    """Elementwise touch-rule mask over two equal-length capsule batches.

    Pair ``i`` touches when the axis distance does not exceed
    ``radius_a[i] + radius_b[i] + eps`` (plus the shared 1e-12 slack of
    :func:`repro.geometry.distance.segments_touch`).
    """
    _record(_active.batch_len(segpack_a[0]))
    return _active.capsule_pairs_touch(segpack_a, segpack_b, eps)


def box_overlap_pairs(
    packed_a: Any, packed_b: Any, eps: float = 0.0
) -> tuple[list[int], list[int]]:
    """Every eps-expanded AABB-overlap pair of two (unsorted) batches.

    The batched TOUCH probe filter: parallel index lists
    ``(indices_a, indices_b)`` in B-major order, equal to running
    :func:`box_intersects` once per B box.  Counted as one batch of
    ``len(a) * len(b)`` pairwise tests.
    """
    _record(_active.batch_len(packed_a) * _active.batch_len(packed_b))
    return _active.box_overlap_pairs(packed_a, packed_b, eps)


def xsorted_overlap_pairs(
    packed_a: Any, packed_b: Any, eps: float = 0.0
) -> tuple[list[int], list[int], int]:
    """Every eps-expanded AABB-overlap pair of two min_x-sorted batches.

    The plane-sweep filter phase as one batch call: returns parallel index
    lists ``(indices_a, indices_b)`` plus the number of candidates whose
    y/z overlap was tested (the sweep's comparison count).  Both inputs
    must be packed in ascending ``min_x`` order.
    """
    result = _active.xsorted_overlap_pairs(packed_a, packed_b, eps)
    _record(result[2])
    return result


def hilbert_keys(coords: Sequence[Any], order: int) -> Any:
    """Hilbert curve keys for a batch of integer grid coordinates.

    Elementwise identical to :func:`repro.hilbert.curve.hilbert_encode`.
    """
    _record(len(coords))
    return _active.hilbert_keys(coords, order)


# -- mask utilities ------------------------------------------------------------
def nonzero(mask: Any) -> list[int]:
    """Indices of the true elements of a mask, ascending."""
    return _active.nonzero(mask)


def count(mask: Any) -> int:
    """Number of true elements of a mask."""
    return _active.count(mask)
