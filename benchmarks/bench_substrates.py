"""Substrate micro-benchmarks: the building blocks under the three systems.

Not paper figures — these keep the foundations honest (a regression here
would silently distort every experiment above) and document the costs a
downstream user should expect.
"""

from __future__ import annotations

import pytest

from repro.core.touch.parallel import sharded_touch_join
from repro.core.touch.tree import build_touch_tree
from repro.experiments.datasets import circuit_dataset, dense_join_workload
from repro.geometry.aabb import AABB
from repro.hilbert.curve import HilbertEncoder3D, hilbert_encode
from repro.neuro.generator import MorphologyGenerator
from repro.rtree.bulk import str_bulk_load
from repro.rtree.tree import RTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.object_store import ObjectStore


@pytest.fixture(scope="module")
def segment_items():
    circuit = circuit_dataset(n_neurons=20)
    return [(s.uid, s.aabb) for s in circuit.segments()]


def test_hilbert_encode_throughput(benchmark):
    """Raw curve encoding (order 10, 3-D)."""
    coords = [(x % 1024, (x * 7) % 1024, (x * 13) % 1024) for x in range(256)]
    benchmark(lambda: [hilbert_encode(c, 10) for c in coords])


def test_hilbert_encoder_points(benchmark):
    world = AABB(0, 0, 0, 1000, 1000, 1000)
    encoder = HilbertEncoder3D(world, order=10)
    points = [(i % 997, (i * 3) % 997, (i * 11) % 997) for i in range(256)]
    benchmark(lambda: [encoder.key(p) for p in points])


def test_rtree_str_bulk_load(benchmark, segment_items):
    tree = benchmark(lambda: str_bulk_load(segment_items, max_entries=16, leaf_capacity=48))
    assert len(tree) == len(segment_items)


def test_rtree_insertion_build(benchmark, segment_items):
    items = segment_items[:2000]

    def build():
        tree = RTree(max_entries=16, leaf_capacity=48)
        for uid, mbr in items:
            tree.insert(uid, mbr)
        return tree

    tree = benchmark(build)
    assert len(tree) == len(items)


def test_rtree_knn(benchmark, segment_items):
    from repro.geometry.vec import Vec3

    tree = str_bulk_load(segment_items, max_entries=16)
    result = benchmark(lambda: tree.knn(Vec3(0.0, 500.0, 0.0), 10))
    assert len(result) == 10


def test_object_store_build(benchmark):
    circuit = circuit_dataset(n_neurons=20)
    store = benchmark(lambda: ObjectStore(circuit.segments(), page_capacity=48))
    assert store.num_pages > 0


def test_buffer_pool_churn(benchmark):
    circuit = circuit_dataset(n_neurons=20)
    store = ObjectStore(circuit.segments(), page_capacity=48)
    page_ids = store.disk.page_ids()

    def churn():
        pool = BufferPool(store.disk, capacity=32)
        for pid in page_ids:
            pool.fetch(pid)
        for pid in reversed(page_ids):
            pool.fetch(pid)
        return pool

    pool = benchmark(churn)
    assert pool.stats.demand_fetches == 2 * len(page_ids)


def test_morphology_growth(benchmark):
    generator = MorphologyGenerator()
    morphology = benchmark(lambda: generator.grow(seed=42))
    assert morphology.num_segments > 0


def test_touch_tree_build(benchmark):
    objects_a, _ = dense_join_workload(4000)
    root = benchmark(lambda: build_touch_tree(list(objects_a), leaf_capacity=32, fanout=8))
    assert root.subtree_object_count() == len(objects_a)


@pytest.mark.parametrize("shards", [1, 4])
def test_sharded_join(benchmark, shards):
    """Sharding overhead/benefit on the execution-model driver."""
    objects_a, objects_b = dense_join_workload(2000)
    result = benchmark(
        lambda: sharded_touch_join(list(objects_a), list(objects_b), eps=3.0, shards=shards)
    )
    assert result.makespan_ms <= result.total_work_ms + 1e-9
