"""E8: tissue-statistics scan (the FLAT production use case of §2.1)."""

from __future__ import annotations

from repro.experiments.fig_flat import tissue_statistics_experiment


def test_e8_tissue_statistics(benchmark, save_result):
    """Grid scan over the column: FLAT needs no more I/O than the R-tree."""
    result = benchmark.pedantic(tissue_statistics_experiment, rounds=1, iterations=1)
    save_result("E8_tissue_statistics", result.render())
    assert result.flat_total_pages <= result.rtree_total_pages
    assert len(result.densities) == result.cells_per_axis**3
    assert max(result.densities) > 0.0
