"""E2: FLAT's density independence (paper §2.1 headline claim)."""

from __future__ import annotations

from repro.experiments.fig_flat import density_sweep_experiment


def test_e2_density_sweep(benchmark, save_result):
    """FLAT's I/O stays ~flat across an 8x density increase; R-tree grows."""
    sweep = benchmark.pedantic(
        lambda: density_sweep_experiment(density_factors=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    save_result("E2_density_sweep", sweep.render())
    assert sweep.flat_growth() < 1.25
    assert sweep.rtree_growth() > sweep.flat_growth() * 1.2
