"""Shared benchmark fixtures.

Benchmarks regenerate the paper's figures (see the experiment index in
DESIGN.md).  Each bench saves the rendered experiment table under
``benchmarks/results/`` so EXPERIMENTS.md points at concrete artifacts, and
asserts the qualitative shape the paper reports.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
