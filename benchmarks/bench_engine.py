"""Engine planner benchmarks: planner-chosen vs forced strategies.

Times the planner's own overhead (``explain``) and compares planned
execution against forced-strategy overrides on a dense and a sparse range
window plus a tiny and a large join, so future PRs can see whether the
planner keeps picking the cheaper side and what its decision costs.  The
saved table carries the per-query engine stats for both choices.
"""

from __future__ import annotations

import pytest

import repro
from repro.experiments.datasets import circuit_dataset
from repro.utils.tables import Table
from repro.workloads.ranges import density_stratified_queries

N_NEURONS = 40
PAGE_CAPACITY = 48
EXTENT = 80.0


@pytest.fixture(scope="module")
def circuit():
    return circuit_dataset(n_neurons=N_NEURONS)


@pytest.fixture(scope="module")
def engine(circuit):
    return repro.SpatialEngine.from_circuit(circuit, page_capacity=PAGE_CAPACITY)


@pytest.fixture(scope="module")
def dense_window(circuit):
    return density_stratified_queries(circuit.segments(), 1, EXTENT, dense=True, seed=2013)[0]


@pytest.fixture(scope="module")
def sparse_window(circuit):
    return density_stratified_queries(circuit.segments(), 1, EXTENT, dense=False, seed=2013)[0]


def _fresh_engine(circuit):
    """A cold engine per measurement so buffer-pool state stays comparable."""
    return repro.SpatialEngine.from_circuit(circuit, page_capacity=PAGE_CAPACITY)


def test_planner_overhead_range(benchmark, engine, dense_window):
    """The cost of one plan decision — must stay microseconds."""
    plan = benchmark(lambda: engine.explain(repro.RangeQuery(dense_window)))
    assert plan.strategy == "flat"


def test_planned_dense_range(benchmark, engine, dense_window):
    """Planner-chosen execution on the dense window (expected: FLAT)."""
    result = benchmark(lambda: engine.execute(repro.RangeQuery(dense_window)))
    assert result.plan.strategy == "flat"
    assert result.num_results > 0


def test_forced_rtree_dense_range(benchmark, engine, dense_window):
    """The override the planner rejects on dense data."""
    query = repro.RangeQuery(dense_window, strategy="rtree")
    result = benchmark(lambda: engine.execute(query))
    assert result.plan.overridden
    assert result.num_results > 0


def test_planned_sparse_range(benchmark, engine, sparse_window):
    """Planner-chosen execution on the sparse window (expected: R-tree)."""
    result = benchmark(lambda: engine.execute(repro.RangeQuery(sparse_window)))
    assert result.plan.strategy == "rtree"


def test_forced_flat_sparse_range(benchmark, engine, sparse_window):
    query = repro.RangeQuery(sparse_window, strategy="flat")
    result = benchmark(lambda: engine.execute(query))
    assert result.plan.overridden


def test_planner_vs_forced_table(benchmark, circuit, dense_window, sparse_window, save_result):
    """Cold-engine comparison table; the planner must match the cheaper side."""

    def run():
        rows = []
        outcome: dict[tuple[str, str], repro.EngineStats] = {}
        for label, window in (("dense", dense_window), ("sparse", sparse_window)):
            for strategy in (None, "flat", "rtree"):
                fresh = _fresh_engine(circuit)
                result = fresh.execute(repro.RangeQuery(window, strategy=strategy))
                name = "planned" if strategy is None else f"forced {strategy}"
                outcome[(label, name)] = result.stats
                rows.append((label, name, result.plan.strategy, result.stats))
        return rows, outcome

    rows, outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["window", "mode", "ran via", "results", "pages", "io ms", "comparisons"],
        title=f"planner vs forced strategies ({N_NEURONS} neurons, extent {EXTENT:g} um)",
    )
    for label, name, ran_via, stats in rows:
        table.add_row(
            [label, name, ran_via, stats.num_results, stats.pages_read,
             stats.io_time_ms, stats.comparisons]
        )
    save_result("ENGINE_planner_vs_forced", table.render())

    # The planner's pick must read no more pages than the worse forced option.
    for label in ("dense", "sparse"):
        planned = outcome[(label, "planned")]
        worst = max(
            outcome[(label, "forced flat")].pages_read,
            outcome[(label, "forced rtree")].pages_read,
        )
        assert planned.pages_read <= worst


def test_join_planner_tiny_vs_large(benchmark, circuit, save_result):
    """Tiny joins run the sweep, large joins TOUCH; results always agree."""

    def run():
        engine = _fresh_engine(circuit)
        axons = tuple(circuit.axon_segments()[:120])
        dendrites = tuple(circuit.dendrite_segments()[:120])
        tiny = engine.execute(repro.SpatialJoin(eps=3.0, side_a=axons, side_b=dendrites))
        tiny_forced = engine.execute(
            repro.SpatialJoin(eps=3.0, side_a=axons, side_b=dendrites, strategy="touch")
        )
        large = engine.explain(repro.SpatialJoin(eps=3.0))
        return tiny, tiny_forced, large

    tiny, tiny_forced, large = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tiny.plan.strategy == "plane-sweep"
    assert sorted(tiny.payload) == sorted(tiny_forced.payload)
    assert large.strategy == "touch"
    table = Table(
        ["join", "ran via", "pairs", "comparisons"],
        title="join planning (tiny forced vs planned)",
    )
    table.add_row(["tiny planned", tiny.plan.strategy, tiny.num_results, tiny.stats.comparisons])
    table.add_row(
        ["tiny forced", tiny_forced.plan.strategy, tiny_forced.num_results,
         tiny_forced.stats.comparisons]
    )
    save_result("ENGINE_join_planning", table.render())
