"""A1-A6: ablations of the design choices DESIGN.md calls out."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    a1_flat_verification,
    a2_flat_page_capacity,
    a3_scout_content_awareness,
    a4_scout_pruning,
    a5_touch_filtering,
    a6_touch_fanout,
    a7_flat_incremental_maintenance,
    a8_touch_eps_sensitivity,
)


def test_a1_flat_verification(benchmark, save_result):
    """Verification adds seed work; crawl-only already achieves full recall
    on the circuit workloads (the neighbour graph connects every range)."""
    result = benchmark.pedantic(a1_flat_verification, rounds=1, iterations=1)
    save_result("A1_flat_verification", result.render())
    crawl_only, verified = result.rows
    assert crawl_only["recall"] == pytest.approx(1.0)
    assert verified["recall"] == pytest.approx(1.0)
    assert verified["seed_nodes"] > crawl_only["seed_nodes"]
    assert verified["data_pages"] == pytest.approx(crawl_only["data_pages"])


def test_a2_flat_page_capacity(benchmark, save_result):
    """Smaller pages fetch less junk per query but need more fetches."""
    result = benchmark.pedantic(a2_flat_page_capacity, rounds=1, iterations=1)
    save_result("A2_flat_page_capacity", result.render())
    rows = result.rows
    # Page count per query decreases monotonically with capacity...
    assert rows[0]["pages"] >= rows[-1]["pages"]
    # ...while the objects touched per query grow (coarser granularity).
    assert rows[0]["scanned"] <= rows[-1]["scanned"]


def test_a3_scout_content_awareness(benchmark, save_result):
    """Skeleton-path smoothing must not hurt; jagged paths reward it."""
    result = benchmark.pedantic(a3_scout_content_awareness, rounds=1, iterations=1)
    save_result("A3_scout_content", result.render())
    smoothed, single = result.rows
    assert smoothed["stall_ms"] <= single["stall_ms"] * 1.1


def test_a4_scout_pruning(benchmark, save_result):
    """Pruning concentrates the budget: fewer wasted prefetches."""
    result = benchmark.pedantic(a4_scout_pruning, rounds=1, iterations=1)
    save_result("A4_scout_pruning", result.render())
    pruned, unpruned = result.rows
    assert pruned["accuracy"] >= unpruned["accuracy"] * 0.95
    assert pruned["issued"] <= unpruned["issued"]


def test_a5_touch_filtering(benchmark, save_result):
    """Empty-space filtering removes work without changing results."""
    result = benchmark.pedantic(a5_touch_filtering, rounds=1, iterations=1)
    save_result("A5_touch_filtering", result.render())
    on, off = result.rows
    assert on["pairs"] == off["pairs"]
    assert on["filtered"] > 0
    assert on["comparisons"] <= off["comparisons"]


def test_a6_touch_fanout(benchmark, save_result):
    """Fanout trades node tests against bucket sizes; results unchanged."""
    result = benchmark.pedantic(a6_touch_fanout, rounds=1, iterations=1)
    save_result("A6_touch_fanout", result.render())
    assert len({row["fanout"] for row in result.rows}) == len(result.rows)


def test_a7_flat_incremental_maintenance(benchmark, save_result):
    """Incremental inserts keep queries exact at near-rebuild quality."""
    result = benchmark.pedantic(a7_flat_incremental_maintenance, rounds=1, iterations=1)
    save_result("A7_flat_maintenance", result.render())
    incremental, rebuild = result.rows
    assert incremental["recall"] == pytest.approx(1.0)
    assert rebuild["recall"] == pytest.approx(1.0)
    # The locally maintained index must stay within 2x of the rebuilt
    # index's per-query page cost (packing degrades gracefully).
    assert incremental["pages"] <= rebuild["pages"] * 2.0


def test_a8_touch_eps_sensitivity(benchmark, save_result):
    """Pairs and comparisons grow monotonically with the tolerance."""
    result = benchmark.pedantic(a8_touch_eps_sensitivity, rounds=1, iterations=1)
    save_result("A8_touch_eps", result.render())
    pairs = [row["pairs"] for row in result.rows]
    comparisons = [row["comparisons"] for row in result.rows]
    assert pairs == sorted(pairs)
    assert comparisons == sorted(comparisons)
