"""E6: the Figure 7 join comparison — time, memory, pairwise comparisons."""

from __future__ import annotations

import pytest

from repro.experiments.datasets import dense_join_workload
from repro.experiments.fig_touch import JOIN_ALGORITHMS, join_comparison_experiment

N_PER_SIDE = 1200  # small enough that the O(n^2) strawman stays benchable
EPS = 3.0


@pytest.fixture(scope="module")
def join_inputs():
    return dense_join_workload(N_PER_SIDE)


@pytest.mark.parametrize("algorithm", list(JOIN_ALGORITHMS))
def test_join_algorithm(benchmark, join_inputs, algorithm):
    """Wall-clock of each join algorithm on the same dense inputs."""
    objects_a, objects_b = join_inputs
    join = JOIN_ALGORITHMS[algorithm]
    result = benchmark(lambda: join(objects_a, objects_b, eps=EPS))
    expected = JOIN_ALGORITHMS["TOUCH"](objects_a, objects_b, eps=EPS)
    assert result.sorted_pairs() == expected.sorted_pairs()


def test_e6_join_table(benchmark, save_result):
    """Regenerate the Figure 7 statistics table with refinement applied."""
    result = benchmark.pedantic(
        lambda: join_comparison_experiment(n_per_side=2500), rounds=1, iterations=1
    )
    save_result("E6_join_comparison", result.render())
    touch = result.row("TOUCH")
    for name in ("PBSM", "S3", "plane-sweep", "nested-loop"):
        assert touch.comparisons < result.row(name).comparisons
    assert touch.replicated == 0
    assert result.row("PBSM").replicated > 0
    assert touch.filtered > 0  # empty space is actually exploited
