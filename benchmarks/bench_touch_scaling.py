"""E7: join scaling — the §4.1 order-of-magnitude claims as a size sweep."""

from __future__ import annotations

from repro.experiments.fig_touch import join_scaling_experiment


def test_e7_join_scaling(benchmark, save_result):
    """TOUCH stays fastest and the competitors' gap widens with size."""
    result = benchmark.pedantic(
        lambda: join_scaling_experiment(sizes=(1000, 2000, 4000), nested_loop_max=2000),
        rounds=1,
        iterations=1,
    )
    save_result("E7_join_scaling", result.render())

    largest = max(r.n_per_side for r in result.rows)

    def comparisons(algorithm: str, n: int) -> int:
        return next(
            r.comparisons
            for r in result.rows
            if r.algorithm == algorithm and r.n_per_side == n
        )

    touch = comparisons("TOUCH", largest)
    # Comparison counts are deterministic (unlike wall time): TOUCH needs
    # several times fewer than every competitor at the largest size.
    assert comparisons("PBSM", largest) > touch * 2
    assert comparisons("plane-sweep", largest) > touch * 2
    assert comparisons("S3", largest) > touch
    assert comparisons("nested-loop", 2000) > comparisons("TOUCH", 2000) * 20
