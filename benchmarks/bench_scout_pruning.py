"""E4: SCOUT candidate-set pruning (Figure 5)."""

from __future__ import annotations

from repro.experiments.fig_scout import pruning_experiment


def test_e4_candidate_pruning(benchmark, save_result):
    """The candidate set shrinks as the walkthrough proceeds."""
    result = benchmark.pedantic(pruning_experiment, rounds=1, iterations=1)
    save_result("E4_candidate_pruning", result.render())
    history = result.candidate_history
    assert len(history) >= 5
    # Strong start-to-steady-state contraction (Figure 5's shape): the
    # steady-state candidate set is a small fraction of the initial one.
    assert min(history[2:]) <= max(history[0], 1) // 2
    assert history[0] >= history[-1]
