"""E1 + E3: FLAT vs R-tree range queries (Figures 2, 3 and 4).

``--benchmark-only`` timings compare one dense-region window executed by
FLAT and by the R-tree; the saved tables carry the full demo statistics.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import circuit_dataset, flat_index_for, rtree_baseline_for
from repro.experiments.fig_flat import crawl_trace_experiment, flat_vs_rtree_experiment
from repro.workloads.ranges import density_stratified_queries

N_NEURONS = 40
PAGE_CAPACITY = 48
EXTENT = 80.0


@pytest.fixture(scope="module")
def dense_window():
    circuit = circuit_dataset(n_neurons=N_NEURONS)
    return density_stratified_queries(
        circuit.segments(), 1, EXTENT, dense=True, seed=2013
    )[0]


def test_flat_dense_query(benchmark, dense_window):
    """Time FLAT's seed+crawl on a dense window (E1, FLAT side)."""
    index = flat_index_for(n_neurons=N_NEURONS, page_capacity=PAGE_CAPACITY)
    result = benchmark(lambda: index.query(dense_window, verify=False))
    assert result.stats.num_results > 0


def test_rtree_dense_query(benchmark, dense_window):
    """Time the R-tree on the same window (E1, baseline side)."""
    index = flat_index_for(n_neurons=N_NEURONS, page_capacity=PAGE_CAPACITY)
    rtree = rtree_baseline_for(n_neurons=N_NEURONS, page_capacity=PAGE_CAPACITY)
    uids = benchmark(lambda: rtree.range_query(dense_window))
    expected = sorted(index.query(dense_window).uids)
    assert sorted(uids) == expected


def test_e1_dense_and_sparse_tables(benchmark, save_result):
    """Regenerate the E1 tables; FLAT must beat the R-tree on dense I/O."""

    def run():
        dense = flat_vs_rtree_experiment(region="dense", n_neurons=N_NEURONS)
        sparse = flat_vs_rtree_experiment(region="sparse", n_neurons=N_NEURONS)
        return dense, sparse

    dense, sparse = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("E1_flat_vs_rtree", dense.render() + "\n\n" + sparse.render())
    assert dense.flat.mean_io_ms < dense.rtree.mean_io_ms
    assert dense.flat.mean_results == dense.rtree.mean_results


def test_e3_crawl_trace(benchmark, save_result):
    """Regenerate the Figure 4 crawl trace; the crawl must be contiguous."""
    trace = benchmark.pedantic(crawl_trace_experiment, rounds=1, iterations=1)
    save_result("E3_crawl_trace", trace.render())
    assert trace.contiguous_fraction == pytest.approx(1.0)
    assert trace.reseeds == 0
