"""E5: SCOUT walkthrough prefetching (Figure 6, "up to 15x" claim)."""

from __future__ import annotations

import pytest

from repro.core.scout.session import ExplorationSession
from repro.experiments.datasets import circuit_dataset, flat_index_for
from repro.experiments.fig_scout import (
    SCOUT_PAGE_CAPACITY,
    SCOUT_WINDOW_EXTENT,
    default_prefetcher_factories,
    walkthrough_experiment,
)
from repro.storage.buffer_pool import BufferPool
from repro.workloads.walks import branch_walk

METHODS = ["none", "hilbert", "extrapolation", "SCOUT"]


@pytest.fixture(scope="module")
def walk_fixture():
    circuit = circuit_dataset(n_neurons=40)
    index = flat_index_for(n_neurons=40, page_capacity=SCOUT_PAGE_CAPACITY)
    walk = branch_walk(circuit, window_extent=SCOUT_WINDOW_EXTENT, seed=3, min_steps=14)
    return index, walk


@pytest.mark.parametrize("method", METHODS)
def test_walkthrough_method(benchmark, walk_fixture, method):
    """Wall-clock per full walkthrough under each prefetching policy."""
    index, walk = walk_fixture
    factory = default_prefetcher_factories()[method]

    def run():
        pool = BufferPool(index.disk, capacity=384)
        session = ExplorationSession(index, pool, factory(index, pool))
        return session.run(walk.queries, cold_cache=True)

    metrics = benchmark(run)
    assert metrics.num_steps == len(walk.queries)


def test_e5_walkthrough_table(benchmark, save_result):
    """Regenerate the Figure 6 counters; SCOUT must lead every baseline."""
    result = benchmark.pedantic(
        lambda: walkthrough_experiment(num_walks=3), rounds=1, iterations=1
    )
    save_result("E5_walkthrough", result.render())
    scout = result.row("SCOUT")
    assert scout.speedup > 2.0
    # Steady state (excluding each walk's cold first window) is where the
    # paper's "up to 15x" lives; modelled stall makes this deterministic.
    assert scout.steady_speedup > 8.0
    assert scout.total_stall_ms < result.row("hilbert").total_stall_ms
    assert scout.total_stall_ms < result.row("extrapolation").total_stall_ms
    assert scout.total_stall_ms < result.row("none").total_stall_ms
    # The Markov baseline, trained on other users' paths, stays near 1x -
    # the paper's argument against history-based prefetching at this scale.
    assert result.row("markov").speedup < scout.speedup
