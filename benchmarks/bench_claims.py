"""Headline claims C1-C5: the paper's quantitative statements, measured."""

from __future__ import annotations

from repro.experiments.claims import headline_claims


def test_headline_claims(benchmark, save_result):
    """Measure every claim; the deterministic ones must hold.

    C1 (pages), C2 (modelled stall), C3's comparison ratio and C5 (modelled
    memory) are counter-based and deterministic, so they are asserted.  The
    wall-clock ratios inside C3/C4 vary with machine load and are recorded
    in the saved report rather than asserted.
    """
    report = benchmark.pedantic(
        lambda: headline_claims(quick=True), rounds=1, iterations=1
    )
    save_result("claims_report", report.render())
    by_id = {c.claim_id: c for c in report.claims}
    assert by_id["C1"].holds, by_id["C1"].measured
    assert by_id["C2"].holds, by_id["C2"].measured
    assert by_id["C5"].holds, by_id["C5"].measured
    # C3/C4 include wall-time ratios; require presence, log outcome.
    assert "x" in by_id["C3"].measured
    assert "x" in by_id["C4"].measured
