#!/usr/bin/env python
"""Unified benchmark runner — thin wrapper over :mod:`repro.bench`.

Runs a curated subset of the workloads behind the interactive
``benchmarks/bench_*.py`` scripts (FLAT range/knn, R-tree range, the three
join competitors) plus the batch-kernel microbenches, under every available
kernel backend, and writes the schema-versioned ``BENCH_PR2.json`` report.

Usage (from the repo root; no install needed):

    python benchmarks/run_bench.py --smoke --json BENCH_PR2.json \
        --baseline benchmarks/baseline.json

Exits non-zero when any workload regresses more than ``--max-regression``
(default 30%) against the baseline.  Equivalent to ``repro bench`` from the
installed package.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.bench import main
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.bench import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
