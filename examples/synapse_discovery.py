#!/usr/bin/env python3
"""Synapse discovery: the model-building workflow of paper §4.

Builds a microcircuit, then identifies where to place the synapses — "the
places where branches of different neurons are close enough for electrical
impulses to leap over" — by running the axon x dendrite distance join with
every algorithm of the demo (TOUCH, S3, PBSM, plane-sweep, nested-loop),
applying the exact touch rule as refinement, and printing the Figure 7
statistics: join time, memory footprint, pairwise comparisons.

Run:  python examples/synapse_discovery.py [n_per_side]
"""

from __future__ import annotations

import sys
from collections import Counter

import repro
from repro.experiments.datasets import dense_join_workload
from repro.experiments.fig_touch import join_comparison_experiment
from repro.geometry.distance import segments_touch
from repro.neuro.synapses import refine_touch


def main(n_per_side: int = 2000) -> None:
    # The shared experiment harness runs all algorithms on a dense circuit
    # sample and checks that they produce the identical pair set (E6).
    result = join_comparison_experiment(n_per_side=n_per_side, eps=3.0)
    print(result.render())
    print()

    # Re-run TOUCH standalone to place the synapses and summarise biology.
    axons, dendrites = dense_join_workload(n_per_side)
    join = repro.touch_join(
        list(axons),
        list(dendrites),
        eps=3.0,
        refine=lambda a, b: a.neuron_id != b.neuron_id and segments_touch(a, b),
    )
    segment_of = {s.uid: s for s in list(axons) + list(dendrites)}
    synapses = []
    for pre_uid, post_uid in join.pairs:
        synapse = refine_touch(segment_of[pre_uid], segment_of[post_uid], tolerance=0.0)
        if synapse is not None:
            synapses.append(synapse)

    print(f"placed {len(synapses)} synapses")
    per_pair = Counter((s.pre_neuron, s.post_neuron) for s in synapses)
    if per_pair:
        (pre, post), count = per_pair.most_common(1)[0]
        print(f"strongest connection: neuron {pre} -> neuron {post} "
              f"({count} touch points)")
        ys = [s.position.y for s in synapses]
        print(f"synapse depth range: {min(ys):.0f} .. {max(ys):.0f} um")

    # The join's downstream purpose: connectivity analysis.
    from repro.neuro.connectome import summarize_connectome

    print()
    print(summarize_connectome(synapses).render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
