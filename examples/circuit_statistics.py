#!/usr/bin/env python3
"""Tissue statistics: the FLAT production use case of paper §2.1.

"FLAT is currently used by the neuroscientists to compute statistics
(tissue density etc.) of the models they build."  This example scans the
cortical column with a grid of adjacent range queries, derives per-layer
tissue statistics, and reports the I/O both index structures needed for the
scan.  It also exercises the SWC and surface-mesh substrates: the densest
cell's neurons are exported and meshed.

Run:  python examples/circuit_statistics.py
"""

from __future__ import annotations

import math
from pathlib import Path
from tempfile import mkdtemp

import repro
from repro.experiments import tissue_statistics_experiment
from repro.neuro.surface import neuron_surface_mesh
from repro.utils.tables import Table


def main() -> None:
    circuit = repro.generate_circuit(n_neurons=40, seed=2013)
    index = repro.FLATIndex(circuit.segments(), page_capacity=48)

    # Per-layer statistics via FLAT range queries over layer slabs.
    column = circuit.column_box()
    layer_bounds = [1.0, 0.92, 0.66, 0.50, 0.26, 0.0]  # pia -> white matter
    layer_names = ["L1", "L2/3", "L4", "L5", "L6"]
    table = Table(
        ["layer", "segments", "cable length um", "segments/um^3", "pages read"],
        title="per-layer tissue statistics (computed with FLAT range queries)",
    )
    for name, (top, bottom) in zip(layer_names, zip(layer_bounds, layer_bounds[1:])):
        slab = repro.AABB(
            column.min_x,
            bottom * circuit.config.column_height,
            column.min_z,
            column.max_x,
            top * circuit.config.column_height,
            column.max_z,
        )
        result = index.query(slab)
        segments = [index.object(uid) for uid in result.uids]
        cable = sum(s.length for s in segments)
        volume = math.pi * circuit.config.column_radius**2 * (slab.max_y - slab.min_y)
        table.add_row(
            [
                name,
                len(segments),
                cable,
                len(segments) / volume,
                result.stats.partitions_fetched,
            ]
        )
    print(table.render())

    # Whole-column scan: total cost FLAT vs R-tree (experiment E8).
    print()
    print(tissue_statistics_experiment().render())

    # Exercise the interchange substrates on one neuron.
    neuron = circuit.neurons[0]
    out_dir = Path(mkdtemp(prefix="repro_stats_"))
    swc_path = out_dir / f"neuron_{neuron.gid}.swc"
    repro.write_swc(neuron.morphology, swc_path)
    reread = repro.read_swc(swc_path)
    mesh = neuron_surface_mesh(neuron.morphology, sides=6)
    print(
        f"\nneuron {neuron.gid}: {neuron.morphology.num_sections} sections, "
        f"{neuron.morphology.num_segments} segments, "
        f"total cable {neuron.morphology.total_length():.0f} um"
    )
    print(f"SWC round-trip: wrote {swc_path.name}, reread "
          f"{reread.num_segments} segments (match: {reread.num_segments == neuron.morphology.num_segments})")
    print(f"surface mesh: {mesh.num_vertices} vertices, {mesh.num_faces} triangles, "
          f"area {mesh.surface_area():.0f} um^2")


if __name__ == "__main__":
    main()
