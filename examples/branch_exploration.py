#!/usr/bin/env python3
"""Branch exploration: the SCOUT walkthrough demo of paper §3.2.

"Audience members can choose what prefetching method they want to use and
can interactively walk through the model."  This example scripts that
interaction: it follows a neuron branch with a sliding window under every
prefetching method and prints the per-step stall latencies plus the Figure 6
counters, then contrasts a structure-following walk with a random walk
(where content-aware prediction has nothing to latch onto).

Run:  python examples/branch_exploration.py
"""

from __future__ import annotations

import repro
from repro.core.scout.baselines import (
    ExtrapolationPrefetcher,
    HilbertPrefetcher,
    NoPrefetcher,
)
from repro.utils.tables import Table
from repro.workloads.walks import random_walk


def run_walk(index: repro.FLATIndex, queries, make_prefetcher) -> repro.SessionMetrics:
    pool = repro.BufferPool(index.disk, capacity=384)
    prefetcher = make_prefetcher(pool)
    session = repro.ExplorationSession(index, pool, prefetcher)
    return session.run(queries, cold_cache=True)


def main() -> None:
    circuit = repro.generate_circuit(n_neurons=40, seed=2013)
    index = repro.FLATIndex(circuit.segments(), page_capacity=12)
    # Follow the longest branch chain found among a few candidate seeds
    # (the demo audience would pick a long axon to walk along).
    walk = max(
        (repro.branch_walk(circuit, window_extent=90.0, seed=s, min_steps=18)
         for s in range(6)),
        key=lambda w: len(w.queries),
    )
    print(f"following branch {walk.followed_branch} for {len(walk.queries)} steps\n")

    methods = {
        "none": lambda pool: NoPrefetcher(),
        "hilbert": lambda pool: HilbertPrefetcher(index, pool),
        "extrapolation": lambda pool: ExtrapolationPrefetcher(index, pool),
        "SCOUT": lambda pool: repro.ScoutPrefetcher(index, pool),
    }
    results = {name: run_walk(index, walk.queries, make) for name, make in methods.items()}

    table = Table(
        ["method", "stall ms", "prefetched", "correct", "extra fetches", "speedup"],
        title="walkthrough summary (Figure 6 counters)",
    )
    for name, metrics in results.items():
        table.add_row(
            [
                name,
                metrics.total_stall_ms,
                metrics.total_prefetched,
                metrics.prefetch_used,
                metrics.demand_misses,
                f"{metrics.speedup_over(results['none']):.1f}x",
            ]
        )
    print(table.render())

    print("\nper-step stall (ms) - smoothness of the visualization:")
    header = "step:  " + " ".join(f"{i:>6d}" for i in range(len(walk.queries)))
    print(header)
    for name in ("none", "SCOUT"):
        stalls = " ".join(f"{s.stall_ms:6.1f}" for s in results[name].steps)
        print(f"{name:>5s}: {stalls}")

    # The first window is unavoidably cold for everyone; the steady state
    # is where prefetching lives.
    steady_none = sum(s.stall_ms for s in results["none"].steps[1:])
    steady_scout = sum(s.stall_ms for s in results["SCOUT"].steps[1:])
    if steady_scout > 0:
        print(f"steady-state speedup (excluding the cold first window): "
              f"{steady_none / steady_scout:.1f}x")

    # Random movement: content-aware prediction degrades gracefully.
    rnd = random_walk(circuit, window_extent=90.0, steps=len(walk.queries), seed=9)
    scout_random = run_walk(index, rnd.queries, methods["SCOUT"])
    none_random = run_walk(index, rnd.queries, methods["none"])
    print(
        f"\nrandom walk contrast: SCOUT "
        f"{scout_random.speedup_over(none_random):.2f}x vs "
        f"{results['SCOUT'].speedup_over(results['none']):.2f}x when following "
        "a structure (content-aware prefetching needs structure to follow)"
    )


if __name__ == "__main__":
    main()
