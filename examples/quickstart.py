#!/usr/bin/env python3
"""Quickstart: one tour through all three systems on a small circuit.

Generates a synthetic cortical microcircuit, runs a FLAT range query (with
the live statistics the demo displays), walks along a branch with SCOUT
prefetching, and places synapses with the TOUCH join.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # ------------------------------------------------------------------ data
    circuit = repro.generate_circuit(n_neurons=25, seed=42)
    segments = circuit.segments()
    print(f"circuit: {circuit.num_neurons} neurons, {len(segments):,} segments")
    print(f"column: {circuit.config.column_radius:g} um radius x "
          f"{circuit.config.column_height:g} um height\n")

    # ------------------------------------------------------- FLAT range query
    index = repro.FLATIndex(segments, page_capacity=48)
    window = repro.AABB.from_center_extent(circuit.bounding_box().center(), 120.0)
    result = index.query(window)
    stats = result.stats
    print("FLAT range query")
    print(f"  results: {stats.num_results}   data pages: {stats.partitions_fetched}   "
          f"seed-index visits: {stats.seed_nodes_visited}")
    print(f"  crawl visits the result contiguously: {stats.crawl_order[:10]} ...\n")

    # ----------------------------------------------------- SCOUT walkthrough
    walk = repro.branch_walk(circuit, window_extent=90.0, seed=7)
    pool = repro.BufferPool(index.disk, capacity=256)
    scout = repro.ScoutPrefetcher(index, pool)
    session = repro.ExplorationSession(index, pool, scout)
    metrics = session.run(walk.queries)

    pool_cold = repro.BufferPool(index.disk, capacity=256)
    baseline = repro.ExplorationSession(index, pool_cold, repro.NoPrefetcher())
    baseline_metrics = baseline.run(walk.queries)

    print(f"SCOUT walkthrough ({len(walk.queries)} steps following branch "
          f"{walk.followed_branch})")
    print(f"  prefetched: {metrics.total_prefetched} pages   "
          f"correctly prefetched: {metrics.prefetch_used}   "
          f"retrieved additionally: {metrics.demand_misses}")
    print(f"  stall: {metrics.total_stall_ms:.1f} ms vs "
          f"{baseline_metrics.total_stall_ms:.1f} ms without prefetching "
          f"({metrics.speedup_over(baseline_metrics):.1f}x faster)\n")

    # ------------------------------------------------------------ TOUCH join
    join = repro.touch_join(
        circuit.axon_segments(), circuit.dendrite_segments(), eps=3.0
    )
    print("TOUCH synapse discovery (axon x dendrite distance join)")
    print(f"  candidate synapse sites: {join.num_pairs}")
    print(f"  comparisons: {join.stats.comparisons:,}   "
          f"filtered into empty space: {join.stats.filtered:,}   "
          f"memory: {join.stats.memory_bytes:,} B")
    nested = repro.nested_loop_join(
        circuit.axon_segments(), circuit.dendrite_segments(), eps=3.0
    )
    print(f"  nested loop needs {nested.stats.comparisons:,} comparisons "
          f"({nested.stats.comparisons / max(join.stats.comparisons, 1):.0f}x more)")
    assert sorted(join.pairs) == sorted(nested.pairs), "join results must agree"
    print("  verified: TOUCH output identical to nested-loop oracle")


if __name__ == "__main__":
    main()
