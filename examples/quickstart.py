#!/usr/bin/env python3
"""Quickstart: one tour through all three systems via the SpatialEngine.

Generates a synthetic cortical microcircuit, binds a :class:`SpatialEngine`
to it, and asks declarative questions: a range window, the nearest
segments to a point, a SCOUT-prefetched walkthrough, and synapse placement
as a spatial join.  The engine's planner picks the execution strategy per
query (``explain`` shows the decision); the same low-level constructors
remain available for hand-wired pipelines (see the kernel section at the
end).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # ------------------------------------------------------------------ data
    circuit = repro.generate_circuit(n_neurons=25, seed=42)
    engine = repro.SpatialEngine.from_circuit(circuit, page_capacity=48)
    print(engine.describe())
    print()

    # ------------------------------------------------------------ range query
    window = repro.AABB.from_center_extent(circuit.bounding_box().center(), 120.0)
    query = repro.RangeQuery(window)
    print(engine.explain(query).render())
    hits = engine.execute(query)
    print(f"  -> {hits.num_results} segments, {hits.stats.pages_read} pages, "
          f"{hits.stats.io_time_ms:.1f} ms simulated I/O\n")

    # A sparse window flips the planner to the R-tree.
    corner = repro.AABB.from_center_extent(
        (circuit.bounding_box().max_x, circuit.bounding_box().max_y,
         circuit.bounding_box().max_z), 40.0)
    print(engine.explain(repro.RangeQuery(corner)).render())
    print()

    # ------------------------------------------------------ nearest neighbours
    nearest = engine.execute(repro.KNNQuery(window.center(), k=5))
    print(f"5 nearest segments to the column centre ({nearest.plan.describe()}):")
    for uid, distance in nearest.payload:
        print(f"  segment {uid} at {distance:.2f} um")
    print()

    # ----------------------------------------------------- SCOUT walkthrough
    walk = repro.branch_walk(circuit, window_extent=90.0, seed=7)
    tour = repro.Walkthrough(tuple(walk.queries))
    result = engine.execute(tour)
    baseline = engine.execute(repro.Walkthrough(tuple(walk.queries), strategy="none"))
    metrics, cold = result.payload, baseline.payload
    print(f"walkthrough of {metrics.num_steps} windows ({result.plan.describe()}):")
    print(f"  prefetched: {metrics.total_prefetched} pages   "
          f"correctly prefetched: {metrics.prefetch_used}   "
          f"retrieved additionally: {metrics.demand_misses}")
    print(f"  stall: {metrics.total_stall_ms:.1f} ms vs "
          f"{cold.total_stall_ms:.1f} ms without prefetching "
          f"({metrics.speedup_over(cold):.1f}x faster)\n")

    # ------------------------------------------------------------ TOUCH join
    join = engine.execute(repro.SpatialJoin(eps=3.0))
    print(f"synapse discovery ({join.plan.describe()}):")
    print(f"  candidate synapse sites: {join.num_results}   "
          f"comparisons: {join.stats.comparisons:,}")
    oracle = repro.nested_loop_join(
        circuit.axon_segments(), circuit.dendrite_segments(), eps=3.0
    )
    assert sorted(join.payload) == oracle.sorted_pairs(), "join results must agree"
    print("  verified: engine join identical to nested-loop oracle\n")

    # ------------------------------------------------------- engine telemetry
    print(engine.telemetry.render())
    print()

    # ------------------------------------------------ kernel layer, hand-wired
    # The engine composes the same public primitives you can drive directly:
    index = repro.FLATIndex(circuit.segments(), page_capacity=48)
    result = index.query(window)
    print(f"kernel layer: FLATIndex.query -> {result.stats.num_results} results in "
          f"{result.stats.partitions_fetched} pages (same systems, no planner)")


if __name__ == "__main__":
    main()
