#!/usr/bin/env python3
"""Model maintenance: "build, analyze and fix the models" (paper §1/§5).

The BBP workflow grows a circuit over months: new neurons are placed,
queries validate the tissue, mis-placed branches get removed — and none
of that work may be lost to a crash.  This example drives the loop
through the engine's declarative mutation API and the durability layer:

1. make the initial circuit durable via ``repro.create(objects, dir)``
   (epoch-0 checkpoint + write-ahead log),
2. insert a new neuron's segments via ``Insert`` batches (one logged,
   atomic epoch per batch),
3. run validation queries (results always exact),
4. fix the model — ``Delete`` a mis-placed branch, ``Move`` a stray
   segment back into place,
5. "crash" (drop the engine without a clean shutdown), then restart via
   ``repro.open(dir)`` — checkpoint + WAL replay restores the exact
   epoch — and re-run the validation to prove nothing was lost.

Run:  python examples/model_maintenance.py
"""

from __future__ import annotations

from tempfile import mkdtemp

import repro
from repro.neuro.circuit import generate_circuit


def exactness_check(engine, label: str) -> list[int]:
    objects = engine.objects
    world = repro.AABB.union_all(o.aabb for o in objects)
    box = repro.AABB.from_center_extent(world.center(), 180.0)
    got = sorted(engine.execute(repro.RangeQuery(box)).payload)
    expected = sorted(o.uid for o in objects if o.aabb.intersects(box))
    assert got == expected, label
    print(f"  [{label}] validation query: {len(got)} segments, exact")
    return got


def main() -> None:
    # Stage 1: the initial model, made durable from the first epoch.
    base = generate_circuit(n_neurons=12, seed=7)
    model_dir = mkdtemp(prefix="repro_model_")
    durable = repro.create(base.segments(), model_dir)
    print(f"initial model: {base.num_neurons} neurons, "
          f"{durable.num_objects:,} segments -> durable in {model_dir}")
    exactness_check(durable, "initial")

    # Stage 2: a new neuron arrives (same column, fresh morphology).
    grown = generate_circuit(n_neurons=13, seed=7)
    uid_base = max(o.uid for o in durable.objects) + 1
    inserted = [
        repro.Segment(
            uid=uid_base + i, p0=s.p0, p1=s.p1, radius=s.radius,
            neuron_id=s.neuron_id, branch_id=s.branch_id, order=s.order,
        )
        for i, s in enumerate(
            s for s in grown.segments() if s.neuron_id == 12
        )
    ]
    result = durable.apply_many([repro.Insert(s) for s in inserted])
    print(f"\ninserted neuron 12: +{result.stats.inserts} segments as one "
          f"logged batch (epoch {result.stats.epoch})")
    exactness_check(durable, "after insert")

    # Stage 3: fix the model — delete one mis-placed branch, nudge one
    # stray segment back toward the column with a Move.
    victim_branch = inserted[0].branch_id
    victims = [s for s in inserted if s.branch_id == victim_branch]
    durable.apply_many([repro.Delete(s.uid) for s in victims])
    stray = next(s for s in inserted if s.branch_id != victim_branch)
    nudged = repro.Segment(
        uid=stray.uid,
        p0=stray.p0 * 0.98,
        p1=stray.p1 * 0.98,
        radius=stray.radius,
        neuron_id=stray.neuron_id, branch_id=stray.branch_id, order=stray.order,
    )
    durable.apply(repro.Move(stray.uid, nudged))
    print(f"\nfixed the model: -{len(victims)} segments (branch {victim_branch}), "
          f"1 segment moved; epoch {durable.epoch}")
    exactness_check(durable, "after fix")

    # Stage 4: checkpoint, keep editing... and then the process dies.
    durable.checkpoint()
    durable.apply(repro.Delete(inserted[-1].uid))
    before_crash = exactness_check(durable, "after one more edit")
    epoch_before, count_before = durable.epoch, durable.num_objects
    del durable  # SIGKILL stand-in: no close(), no flushing ceremony

    # Stage 5: restart. Checkpoint + WAL replay restore the exact epoch.
    restored = repro.open(model_dir)
    print(f"\nrestart: recovered epoch {restored.epoch} with "
          f"{restored.num_objects:,} segments "
          f"(expected epoch {epoch_before}, {count_before:,} segments)")
    assert restored.epoch == epoch_before
    assert restored.num_objects == count_before
    after_crash = exactness_check(restored, "after restart")
    assert after_crash == before_crash
    print("  restart answers match the pre-crash engine exactly")

    # Time travel: re-open the model as it was before the fixes.
    rerun = repro.open_at_epoch(model_dir, 1)
    print(f"\ntime travel to epoch 1: {rerun.engine.num_objects:,} segments "
          f"(the just-grown model, branch still mis-placed)")
    restored.close()


if __name__ == "__main__":
    main()
