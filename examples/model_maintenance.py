#!/usr/bin/env python3
"""Model maintenance: "build, analyze and fix the models" (paper §1/§5).

The BBP workflow grows a circuit over time: new neurons are placed, queries
validate the tissue, mis-placed branches get removed.  This example builds a
circuit in stages, keeping one FLAT index alive throughout:

1. index the initial circuit,
2. insert a new neuron's segments (local partition splits + re-linking),
3. run validation queries (results always exact),
4. remove a mis-placed branch (partition dissolution),
5. persist the final model (SWC + manifest) and reload it.

Run:  python examples/model_maintenance.py
"""

from __future__ import annotations

from pathlib import Path
from tempfile import mkdtemp

import repro
from repro.neuro.circuit import generate_circuit


def exactness_check(index: repro.FLATIndex, segments, label: str) -> None:
    world = repro.AABB.union_all(s.aabb for s in segments)
    box = repro.AABB.from_center_extent(world.center(), 180.0)
    got = sorted(index.query(box).uids)
    expected = sorted(s.uid for s in segments if s.aabb.intersects(box))
    assert got == expected, label
    print(f"  [{label}] validation query: {len(got)} segments, exact")


def main() -> None:
    # Stage 1: initial model.
    base = generate_circuit(n_neurons=12, seed=7)
    alive = {s.uid: s for s in base.segments()}
    index = repro.FLATIndex(list(alive.values()), page_capacity=32)
    live = sum(1 for p in index.partitions if p.num_objects)
    print(f"initial model: {base.num_neurons} neurons, {len(alive):,} segments, "
          f"{live} partitions")
    exactness_check(index, list(alive.values()), "initial")

    # Stage 2: a new neuron arrives (same column, fresh morphology).
    grown = generate_circuit(n_neurons=13, seed=7)
    new_segments = [s for s in grown.segments() if s.neuron_id == 12]
    uid_base = max(alive) + 1
    inserted = []
    for i, s in enumerate(new_segments):
        placed = repro.Segment(
            uid=uid_base + i, p0=s.p0, p1=s.p1, radius=s.radius,
            neuron_id=s.neuron_id, branch_id=s.branch_id, order=s.order,
        )
        index.insert(placed)
        alive[placed.uid] = placed
        inserted.append(placed)
    index.validate()
    live_after = sum(1 for p in index.partitions if p.num_objects)
    print(f"\ninserted neuron 12: +{len(inserted)} segments, "
          f"partitions {live} -> {live_after} (local splits only)")
    exactness_check(index, list(alive.values()), "after insert")

    # Stage 3: fix the model - remove one mis-placed branch of the new cell.
    victim_branch = inserted[0].branch_id
    victims = [s for s in inserted if s.branch_id == victim_branch]
    for s in victims:
        index.delete(s.uid)
        del alive[s.uid]
    index.validate()
    print(f"\nremoved branch {victim_branch}: -{len(victims)} segments")
    exactness_check(index, list(alive.values()), "after fix")

    # Stage 4: persist the grown model and reload it.
    out_dir = Path(mkdtemp(prefix="repro_model_"))
    manifest = repro.save_circuit(grown, out_dir)
    reloaded = repro.load_circuit(out_dir)
    print(f"\npersisted to {manifest.parent.name}: "
          f"{reloaded.num_neurons} neurons, {reloaded.num_segments:,} segments reload OK")

    report = repro.circuit_morphometry(reloaded)
    print(f"final model cable: {report.total_cable_um:,.0f} um across "
          f"{report.num_sections} sections")


if __name__ == "__main__":
    main()
