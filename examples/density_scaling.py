#!/usr/bin/env python3
"""Density scaling: the FLAT claim of paper §2.1.

"The denser the dataset is ... the more overlap and dead space tree-based
indexes have", while FLAT's two query phases are "independent of the dataset
density".  This example sweeps model density at constant expected result
size and prints the I/O cost per query of both systems — the series behind
experiment E2 — followed by a single dense-region comparison with the live
statistics of the demo's Figures 2 and 3.

Run:  python examples/density_scaling.py
"""

from __future__ import annotations

from repro.experiments import (
    crawl_trace_experiment,
    density_sweep_experiment,
    flat_vs_rtree_experiment,
)


def main() -> None:
    sweep = density_sweep_experiment(density_factors=(1, 2, 4, 8))
    print(sweep.render())
    print(
        f"\ncost growth sparsest -> densest:  FLAT {sweep.flat_growth():.2f}x,  "
        f"R-tree {sweep.rtree_growth():.2f}x"
    )
    print("=> FLAT's I/O tracks the result size, not the density (paper 2.1)\n")

    for region in ("dense", "sparse"):
        print(flat_vs_rtree_experiment(region=region).render())
        print()

    print(crawl_trace_experiment().render())
    print("=> each partition is loaded adjacent to one already loaded: the")
    print("   result 'crawls' outward from the seed, as Figure 4 visualises")


if __name__ == "__main__":
    main()
